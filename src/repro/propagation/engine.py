"""The batch propagation engine: memoized chase + closure caching.

Every decision procedure in this package re-derives its symbolic tableaux
and re-runs its chases from scratch on each ``Sigma |=_V phi`` query.
That is fine for a single query; it is wasteful for the workloads the
paper's evaluation (and any production deployment) actually runs —
*batches* of queries against one view and one dependency set, where the
``k^2`` branch combinations, the coupled instance skeletons and the
attribute closures are shared structure.

:class:`PropagationEngine` answers batches:

- ``check_many(sigma, view, phis)`` / ``check(...)`` — batched
  ``Sigma |=_V phi`` with three layers of sharing (see
  :class:`~repro.propagation.check.BranchPairCache`): materialized branch
  pairs per view, coupled skeletons per LHS shape, and chased results per
  ``(Sigma, pair, LHS shape)`` in the single-chase setting.  Verdicts are
  additionally memoized outright.
- ``cover(sigma, view)`` / ``cover_many(sigma, views)`` — propagation
  covers with the input ``MinCover(Sigma)`` computed once per Sigma and
  shared across views, and SPCU candidate verification routed through the
  cached checker.
- A *closure fast path*: for all-FD dependencies over selection-free,
  constant-free, infinite-domain views, ``Sigma |=_V (X -> B)`` reduces
  to per-atom FD implication, decided by the memoized
  :func:`repro.core.fd.attribute_closure` without any chase at all.

``PropagationEngine(use_cache=False)`` disables every layer (including
the fast path) and routes queries through the plain single-query
procedures — the ``--no-cache`` ablation baseline.  Counters in
:class:`EngineStats` stay live either way, which is what the
perf-regression tests assert on.

Cache keys are *structural*: Sigma is fingerprinted as the frozenset of
its normalized CFDs and views by their normal form (atoms, selection,
projection, constants), so logically equal inputs share cache lines and
any change to Sigma or the view reaches a fresh one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..algebra.spc import SPCView
from ..algebra.spcu import SPCUView
from ..core.cfd import CFD
from ..core.fd import FD, attribute_closure
from ..core.mincover import min_cover
from ..core.values import is_wildcard
from .check import (
    BranchPairCache,
    Counterexample,
    DependencyLike,
    ViewLike,
    _as_cfds,
    find_counterexample,
)
from .cover import prop_cfd_spc_report
from .rbr import RBRStats
from .spcu_cover import prop_cfd_spcu

__all__ = ["EngineStats", "PropagationEngine"]


@dataclass
class EngineStats:
    """Instrumentation counters for one :class:`PropagationEngine`.

    ``chase_invocations`` counts chase runs *launched by check queries*
    (cache hits launch none); the perf-regression tests bound it by the
    number of unique closures/LHS shapes in a batch.
    """

    check_queries: int = 0
    verdict_hits: int = 0
    closure_fast_path: int = 0
    chase_invocations: int = 0
    coupled_hits: int = 0
    coupled_misses: int = 0
    chased_hits: int = 0
    chased_misses: int = 0
    cover_queries: int = 0
    cover_hits: int = 0
    rbr: RBRStats = field(default_factory=RBRStats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            "EngineStats("
            f"check_queries={self.check_queries}, "
            f"verdict_hits={self.verdict_hits}, "
            f"closure_fast_path={self.closure_fast_path}, "
            f"chase_invocations={self.chase_invocations}, "
            f"coupled={self.coupled_hits}h/{self.coupled_misses}m, "
            f"chased={self.chased_hits}h/{self.chased_misses}m, "
            f"cover_queries={self.cover_queries}, cover_hits={self.cover_hits})"
        )


def _view_fingerprint(view: ViewLike) -> tuple:
    """A structural key for a view's normal form."""
    if isinstance(view, SPCUView):
        return ("U",) + tuple(_view_fingerprint(b) for b in view.branches)
    return (
        view.name,
        tuple(view.atoms),
        tuple(view.selection),
        tuple(view.projection),
        tuple(sorted(view.constants.items())),
        view.unsatisfiable,
    )


def _all_wildcard(phi: CFD) -> bool:
    return all(is_wildcard(e) for _, e in phi.lhs) and all(
        is_wildcard(e) for _, e in phi.rhs
    )


class PropagationEngine:
    """Answers batches of propagation queries with cross-query caching.

    Parameters
    ----------
    use_cache:
        ``False`` gives the uncached ablation baseline: every query runs
        the plain single-query procedure (no tableau reuse, no verdict
        memo, no closure fast path).  Verdicts are guaranteed identical
        either way — the differential tests enforce it.
    max_instantiations / assume_infinite:
        Defaults forwarded to the underlying decision procedure (the
        finite-domain enumeration cap and the deliberately incomplete
        PTIME mode, respectively).
    """

    def __init__(
        self,
        use_cache: bool = True,
        max_instantiations: int | None = None,
        assume_infinite: bool = False,
    ) -> None:
        self.use_cache = use_cache
        self.max_instantiations = max_instantiations
        self.assume_infinite = assume_infinite
        self.stats = EngineStats()
        self._pair_caches: dict[tuple, BranchPairCache] = {}
        self._verdicts: dict[tuple, bool] = {}
        self._covers: dict[tuple, list[CFD]] = {}
        self._min_sigma: dict[frozenset, list[CFD]] = {}
        self._fast_contexts: dict[tuple, "_FastPathContext | None"] = {}
        #: Counter totals of caches no longer tracked (retired by clear()
        #: or by object turnover, plus the throwaway uncached-run caches).
        self._retired = {
            "chase_invocations": 0,
            "coupled_hits": 0,
            "coupled_misses": 0,
            "chased_hits": 0,
            "chased_misses": 0,
        }

    # ------------------------------------------------------------------
    # Cache plumbing.
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached tableau, verdict and cover (stats survive)."""
        for cache in self._pair_caches.values():
            self._retire(cache)
        self._pair_caches.clear()
        self._verdicts.clear()
        self._covers.clear()
        self._min_sigma.clear()
        self._fast_contexts.clear()

    def _fast_context(
        self,
        view: ViewLike,
        view_key: tuple,
        sigma_cfds: list[CFD],
        sigma_key: frozenset,
    ) -> "_FastPathContext | None":
        # Memoized per (Sigma, view): the SPCU cover path funnels every
        # candidate through check(), which must not rebuild the context.
        key = (sigma_key, view_key)
        if key not in self._fast_contexts:
            self._fast_contexts[key] = _FastPathContext.of(view, sigma_cfds)
        return self._fast_contexts[key]

    def _retire(self, cache: BranchPairCache) -> None:
        self._retired["chase_invocations"] += cache.chase_invocations
        self._retired["coupled_hits"] += cache.coupled_hits
        self._retired["coupled_misses"] += cache.coupled_misses
        self._retired["chased_hits"] += cache.chased_hits
        self._retired["chased_misses"] += cache.chased_misses

    def _pair_cache(self, view: ViewLike, view_key: tuple) -> BranchPairCache:
        cache = self._pair_caches.get(view_key)
        if cache is None or cache.view is not view:
            # One tableau cache per view *object*: skeleton instances hold
            # SymVars handed out by the view's materialization, so a
            # structurally equal but distinct object gets a fresh cache
            # (the verdict/cover memos still share across objects).
            if cache is not None:
                self._retire(cache)
            cache = BranchPairCache(view, enabled=True)
            self._pair_caches[view_key] = cache
        return cache

    def _sync_pair_stats(self) -> None:
        live = list(self._pair_caches.values())
        for name in self._retired:
            self.stats.__setattr__(
                name,
                self._retired[name] + sum(getattr(c, name) for c in live),
            )

    # ------------------------------------------------------------------
    # Batched checking.
    # ------------------------------------------------------------------

    def check(
        self, sigma: Iterable[DependencyLike], view: ViewLike, phi: DependencyLike
    ) -> bool:
        """Decide ``Sigma |=_V phi`` (single query through the caches)."""
        return self.check_many(sigma, view, [phi])[0]

    def check_many(
        self,
        sigma: Iterable[DependencyLike],
        view: ViewLike,
        phis: Sequence[DependencyLike],
    ) -> list[bool]:
        """Decide ``Sigma |=_V phi`` for every *phi*, sharing work.

        Verdicts are positionally aligned with *phis* and identical to
        ``propagates(sigma, view, phi)`` on each query.
        """
        sigma = list(sigma)
        if not self.use_cache:
            self.stats.check_queries += len(phis)
            cache = BranchPairCache(view, enabled=False)
            verdicts = [
                find_counterexample(
                    sigma,
                    view,
                    phi,
                    max_instantiations=self.max_instantiations,
                    assume_infinite=self.assume_infinite,
                    cache=cache,
                )
                is None
                for phi in phis
            ]
            self._retire(cache)
            self._sync_pair_stats()
            return verdicts

        sigma_cfds = _as_cfds(sigma)
        sigma_key = frozenset(sigma_cfds)
        view_key = _view_fingerprint(view)
        fast = self._fast_context(view, view_key, sigma_cfds, sigma_key)
        cache = self._pair_cache(view, view_key)

        verdicts: list[bool] = []
        for phi in phis:
            self.stats.check_queries += 1
            phi_cfd = CFD.from_fd(phi) if isinstance(phi, FD) else phi
            memo_key = (
                sigma_key,
                view_key,
                phi_cfd,
                self.max_instantiations,
                self.assume_infinite,
            )
            if memo_key in self._verdicts:
                self.stats.verdict_hits += 1
                verdicts.append(self._verdicts[memo_key])
                continue
            verdict = None
            if fast is not None:
                verdict = fast.decide(phi_cfd)
                if verdict is not None:
                    self.stats.closure_fast_path += 1
            if verdict is None:
                verdict = (
                    find_counterexample(
                        sigma_cfds,
                        view,
                        phi_cfd,
                        max_instantiations=self.max_instantiations,
                        assume_infinite=self.assume_infinite,
                        cache=cache,
                    )
                    is None
                )
            self._verdicts[memo_key] = verdict
            verdicts.append(verdict)
        self._sync_pair_stats()
        return verdicts

    def find_counterexample(
        self, sigma: Iterable[DependencyLike], view: ViewLike, phi: DependencyLike
    ) -> Counterexample | None:
        """As :func:`repro.propagation.find_counterexample`, cache-backed.

        Witnesses are not memoized (each call may need a fresh concrete
        database), but tableau materialization and chases are shared.
        """
        cache = None
        if self.use_cache:
            cache = self._pair_cache(view, _view_fingerprint(view))
        witness = find_counterexample(
            sigma,
            view,
            phi,
            max_instantiations=self.max_instantiations,
            assume_infinite=self.assume_infinite,
            cache=cache,
        )
        if cache is not None:
            self._sync_pair_stats()
        return witness

    # ------------------------------------------------------------------
    # Batched covers.
    # ------------------------------------------------------------------

    def cover(
        self, sigma: Iterable[DependencyLike], view: ViewLike
    ) -> list[CFD]:
        """A minimal propagation cover of *sigma* via *view*."""
        return self.cover_many(sigma, [view])[0]

    def cover_many(
        self, sigma: Iterable[DependencyLike], views: Sequence[ViewLike]
    ) -> list[list[CFD]]:
        """Covers for many views over one Sigma, sharing the input MinCover.

        ``PropCFD_SPC`` spends its view-independent prefix (Figure 2
        line 1) minimizing Sigma; across a batch of views that cost is
        paid once and memoized by Sigma fingerprint.  SPCU candidate
        verification is routed through :meth:`check`, so the k^2 pair
        tableaux are shared across all candidates of a union view.
        """
        sigma = list(sigma)
        sigma_cfds = _as_cfds(sigma)
        sigma_key = frozenset(sigma_cfds)
        covers: list[list[CFD]] = []
        for view in views:
            self.stats.cover_queries += 1
            view_key = _view_fingerprint(view)
            memo_key = (sigma_key, view_key)
            if self.use_cache and memo_key in self._covers:
                self.stats.cover_hits += 1
                covers.append(list(self._covers[memo_key]))
                continue
            cover = self._compute_cover(sigma, sigma_cfds, sigma_key, view)
            if self.use_cache:
                self._covers[memo_key] = cover
            covers.append(list(cover))
        return covers

    def _minimized_sigma(self, sigma_cfds: list[CFD], sigma_key: frozenset) -> list[CFD]:
        if not self.use_cache:
            return min_cover(sigma_cfds)
        minimized = self._min_sigma.get(sigma_key)
        if minimized is None:
            minimized = min_cover(sigma_cfds)
            self._min_sigma[sigma_key] = minimized
        return minimized

    def _compute_cover(
        self,
        sigma: list[DependencyLike],
        sigma_cfds: list[CFD],
        sigma_key: frozenset,
        view: ViewLike,
    ) -> list[CFD]:
        if isinstance(view, SPCUView):
            if len(view.branches) == 1:
                view = view.branches[0]
            else:
                # Candidate verification must honor this engine's settings
                # in BOTH modes — cached and uncached covers are required
                # to be identical, including under assume_infinite.
                def check(sig, v, phi, max_instantiations=None):
                    if max_instantiations not in (None, self.max_instantiations):
                        return (
                            find_counterexample(
                                sig,
                                v,
                                phi,
                                max_instantiations=max_instantiations,
                                assume_infinite=self.assume_infinite,
                            )
                            is None
                        )
                    return self.check(sig, v, phi)

                return prop_cfd_spcu(
                    sigma,
                    view,
                    max_instantiations=self.max_instantiations,
                    check=check,
                )
        minimized = self._minimized_sigma(sigma_cfds, sigma_key)
        report = prop_cfd_spc_report(
            minimized,
            view,
            minimize_input=False,
            rbr_stats=self.stats.rbr,
        )
        return report.cover


class _FastPathContext:
    """The closure fast path for FD-only Sigma over projection-style views.

    Applicability (checked once per batch): a single-branch view with no
    selection condition, no constant relation and no finite-domain
    attribute, and a Sigma consisting solely of all-wildcard CFDs (plain
    FDs).  For such views a view tuple is an arbitrary combination of one
    free tuple per atom, so ``Sigma |=_V (X -> B)`` holds iff the embedded
    per-atom implication does: with ``B`` produced by atom ``j``,
    ``X ∩ attrs(j) -> B`` must follow from Sigma on atom ``j``'s source —
    attributes of other atoms never constrain ``B`` (two view tuples may
    agree on them while drawing distinct source tuples).  That implication
    is exactly ``B ∈ closure(X_j)``, served by the memoized
    :func:`repro.core.fd.attribute_closure`.
    """

    def __init__(self, branch: SPCView, sigma_cfds: list[CFD]) -> None:
        self._attr_to_atom: dict[str, int] = {}
        self._to_source: list[dict[str, str]] = []
        self._atom_fds: list[frozenset[FD]] = []
        for index, atom in enumerate(branch.atoms):
            inverse = {v: s for s, v in atom.mapping}
            self._to_source.append(inverse)
            for view_name in atom.view_attributes:
                self._attr_to_atom[view_name] = index
            self._atom_fds.append(
                frozenset(
                    phi.embedded_fd()
                    for phi in sigma_cfds
                    if phi.relation == atom.source
                )
            )
        self._projection = set(branch.projection)

    @classmethod
    def of(cls, view: ViewLike, sigma_cfds: list[CFD]) -> "_FastPathContext | None":
        branches = (
            list(view.branches) if isinstance(view, SPCUView) else [view]
        )
        if len(branches) != 1:
            return None
        branch = branches[0]
        if not isinstance(branch, SPCView):
            return None
        if branch.selection or branch.constants or branch.unsatisfiable:
            return None
        if branch.has_finite_domain_attribute():
            return None
        if not all(_all_wildcard(phi) for phi in sigma_cfds):
            return None
        return cls(branch, sigma_cfds)

    def decide(self, phi: CFD) -> bool | None:
        """The fast-path verdict, or ``None`` when *phi* is out of scope."""
        if phi.is_equality or not _all_wildcard(phi):
            return None
        lhs = set(phi.lhs_attrs)
        for normal in phi.normalize():
            if normal.is_trivial():
                continue
            missing = normal.attributes - self._projection
            if missing:
                # Mirror the decision procedure's contract exactly: only a
                # nontrivial conjunct referencing unprojected attributes
                # is an error.
                raise KeyError(
                    f"view dependency references attributes {sorted(missing)} "
                    "that the view does not project"
                )
            rhs_attr = normal.rhs_attr
            if rhs_attr in lhs:
                continue
            atom_index = self._attr_to_atom[rhs_attr]
            inverse = self._to_source[atom_index]
            source_lhs = frozenset(inverse[a] for a in lhs if a in inverse)
            closure = attribute_closure(source_lhs, self._atom_fds[atom_index])
            if inverse[rhs_attr] not in closure:
                return False
        return True
