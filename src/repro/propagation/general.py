"""General-setting (finite-domain) propagation analysis.

:func:`repro.propagation.check.propagates` already runs the correct
procedure for both settings — it enumerates finite-domain instantiations
only when finite-domain variables occur.  This module adds the two things
the paper's complexity discussion calls for:

- :func:`propagates_ptime_chase`: the *infinite-domain* single-chase
  procedure applied verbatim in the general setting.  It is sound for
  propagation in one direction only and deliberately incomplete — the
  Theorem 3.2 reduction family gives inputs where it answers "not
  propagated" while exhaustive instantiation proves propagation.  Tests
  and Table 1/2 benchmarks use it to exhibit the PTIME/coNP gap.
- Diagnostics for the enumeration cost (how many finite-domain cells the
  coNP procedure may branch on), which the benchmarks plot against
  running time to show the exponential blow-up.
"""

from __future__ import annotations

from typing import Iterable

from ..core.chase import SymbolicInstance, VarFactory, premise_positions
from ..tableau.tableau import materialize_branch
from .check import (
    DependencyLike,
    ViewLike,
    _as_cfds,
    _branches,
    find_counterexample,
    propagates,
)


def propagates_general(
    sigma: Iterable[DependencyLike],
    view: ViewLike,
    phi: DependencyLike,
    max_instantiations: int | None = None,
) -> bool:
    """The general-setting decision procedure (alias with explicit name)."""
    return propagates(sigma, view, phi, max_instantiations=max_instantiations)


def propagates_ptime_chase(
    sigma: Iterable[DependencyLike],
    view: ViewLike,
    phi: DependencyLike,
) -> bool:
    """The infinite-domain chase applied blindly (incomplete when finite
    domains are present).

    A ``True`` answer is always correct: the single chase explores the most
    general instance, so finding no violation there *with a realizable
    witness* can only overapproximate violations — in fact the single
    chase claims a counterexample whenever the RHS cells stay distinct,
    which needs fresh distinct values that a finite domain may not supply,
    or may miss failures that only specific finite values trigger.  Hence
    ``False`` answers must be double-checked by enumeration in the general
    setting.  (Theorem 3.2 is exactly the statement that this gap cannot
    be closed in polynomial time unless P = NP.)
    """
    return propagates(sigma, view, phi, assume_infinite=True)


def finite_branching_cells(
    sigma: Iterable[DependencyLike], view: ViewLike
) -> int:
    """How many finite-domain cells the coNP enumeration may branch on.

    Counts, over the pairwise branch combination with the most cells, the
    finite-domain variables sitting in rule-premise positions of the
    materialized instance.  ``2^cells`` bounds the enumeration; the
    Table 1/2 benchmarks plot runtime against this diagnostic.
    """
    sigma_cfds = _as_cfds(sigma)
    positions = premise_positions(sigma_cfds)
    worst = 0
    for left in _branches(view):
        for right in _branches(view):
            instance = SymbolicInstance()
            factory = VarFactory()
            if materialize_branch(left, instance, factory) is None:
                continue
            if materialize_branch(right, instance, factory) is None:
                continue
            count = 0
            for rel, rows in instance.relations.items():
                watched = positions.get(rel, set())
                seen = set()
                for row in rows:
                    for attr in watched:
                        value = instance.resolve(row.get(attr))
                        if (
                            value is not None
                            and hasattr(value, "domain")
                            and value.domain.is_finite
                            and value not in seen
                        ):
                            seen.add(value)
                            count += 1
            worst = max(worst, count)
    return worst


__all__ = [
    "finite_branching_cells",
    "find_counterexample",
    "propagates_general",
    "propagates_ptime_chase",
]
