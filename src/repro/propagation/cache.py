"""Bounded, tiered caching for the propagation engine.

PR 1's :class:`~repro.propagation.engine.PropagationEngine` memoized
verdicts and covers in plain per-process dicts: unbounded, and gone on
restart.  This module is the cache made a first-class subsystem, in two
tiers:

1. :class:`LRUCache` — the in-memory tier.  A capacity-bounded
   least-recently-used map with hit/miss/eviction counters; the engine
   folds those counters into
   :class:`~repro.propagation.engine.EngineStats`.  ``capacity=None``
   keeps PR 1's unbounded behavior.
2. :class:`TieredCache` — the in-memory tier backed by an optional
   persistent :class:`~repro.store.base.BlobStore` (the local sqlite
   store of ``--cache-dir``, or any ``--store-url`` backend — see
   :mod:`repro.store`).  A memory miss falls through to the store; a
   persistent hit is decoded, *promoted* into the memory tier and
   served.  Writes go through both tiers, so warm lines survive
   restarts and are shared across worker processes pointing at one
   ``--cache-dir`` (or worker *fleets* pointing at one network store).

   A network store can die mid-run; the tier degrades rather than
   fails: a store operation raising the ``unavailable``
   :class:`~repro.api.ApiError` kind counts a ``store_errors`` and is
   served as a plain cache miss (reads) or skipped (writes) — the
   request still answers from the engine.

Keys come in two flavors:

- *Structural* keys (tuples of interned/frozen objects) index the memory
  tier — cheap to build, but they embed Python objects and per-process
  ``hash()`` randomization, so they never leave the process.
- *Stable fingerprints* (:func:`stable_digest` over canonical JSON of the
  :mod:`repro.io` wire format) index the persistent tier.  Two processes
  — or two runs of one process — derive byte-identical keys for logically
  equal ``(Sigma, view, phi, settings)``, because the canonical encoding
  sorts map keys, normalizes Sigma to its normal-form CFD set and sorts
  it, and contains no addresses, hashes or ordering artifacts.

The stability guarantee is exactly as strong as the wire format's:
anything :func:`repro.io.dependency_to_json` / :func:`repro.io.view_to_json`
round-trips canonically is a stable cache key.  Change the encoding and
you must bump :data:`repro.propagation.store.SCHEMA_VERSION`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Iterable

from ..algebra.spcu import SPCUView
from ..core.cfd import CFD
from ..core.lru import LRUCache
from ..io import domain_to_json, dependency_to_json, spc_view_to_json
from .store import SqliteStore

__all__ = [
    "LRUCache",
    "TieredCache",
    "stable_digest",
    "sigma_fingerprint",
    "view_fingerprint",
    "dependency_fingerprint",
    "query_persist_key",
    "verdict_persist_key",
    "cover_persist_key",
]

_MISSING = object()


# LRUCache now lives in repro.core.lru (dependency-free) so the closure
# memo in repro.core.fd and the kernel's compiled-program caches can use
# it without importing the propagation layer; re-exported here unchanged.


class TieredCache:
    """An :class:`LRUCache` backed by an optional persistent store table.

    ``get``/``put`` take two keys: the process-local structural key for
    the memory tier and (when a store is attached) the stable fingerprint
    for the persistent tier.  ``get`` returns ``(value, layer)`` with
    ``layer`` one of ``"memory"``, ``"persistent"`` or ``None`` (miss);
    a persistent hit is promoted into the memory tier.  Payloads cross
    the store boundary through the injected ``encode``/``decode`` pair.
    """

    def __init__(
        self,
        table: str,
        capacity: int | None = None,
        store: SqliteStore | None = None,
        encode: Callable[[Any], str] = str,
        decode: Callable[[str], Any] = str,
    ) -> None:
        self.table = table
        self.memory = LRUCache(capacity)
        self.store = store
        self._encode = encode
        self._decode = decode
        self.persistent_hits = 0
        self.persistent_misses = 0
        self.persistent_writes = 0
        self.store_errors = 0

    def _degradable(self, exc: Exception) -> bool:
        """Is *exc* a dead-store condition we absorb as a miss?

        Duck-typed on the ``unavailable`` :class:`~repro.api.ApiError`
        kind (this module sits below :mod:`repro.api` in the layer map,
        so it must not import the error type): connectivity failures of
        a network store degrade; anything else — a programming error,
        an unknown table, a server-side ``bad-request`` — still raises.
        """
        if getattr(exc, "kind", None) != "unavailable":
            return False
        self.store_errors += 1
        return True

    def get(self, key: Any, persist_key: str | None = None) -> tuple[Any, str | None]:
        value = self.memory.get(key, _MISSING)
        if value is not _MISSING:
            return value, "memory"
        if self.store is not None and persist_key is not None:
            try:
                payload = self.store.get(self.table, persist_key)
            except Exception as exc:
                if not self._degradable(exc):
                    raise
                payload = None
            if payload is not None:
                self.persistent_hits += 1
                value = self._decode(payload)
                self.memory.put(key, value)
                return value, "persistent"
            self.persistent_misses += 1
        return None, None

    def put(self, key: Any, value: Any, persist_key: str | None = None) -> None:
        self.memory.put(key, value)
        if self.store is not None and persist_key is not None:
            try:
                self.store.put(self.table, persist_key, self._encode(value))
            except Exception as exc:
                if not self._degradable(exc):
                    raise
                return
            self.persistent_writes += 1

    def wait_promote(
        self, key: Any, persist_key: str | None, timeout_s: float
    ) -> tuple[Any, bool]:
        """Block for another flight's persistent write, then promote it.

        The waiter half of cross-process single-flight: polls the store
        for the lease owner's payload; on arrival decodes it, promotes
        it into the memory tier and returns ``(value, True)`` (counted
        as a persistent hit — the store served it).  ``(None, False)``
        on timeout or a dead store — the caller computes locally.
        """
        if self.store is None or persist_key is None:
            return None, False
        try:
            payload = self.store.wait_for(self.table, persist_key, timeout_s)
        except Exception as exc:
            if not self._degradable(exc):
                raise
            payload = None
        if payload is None:
            return None, False
        self.persistent_hits += 1
        value = self._decode(payload)
        self.memory.put(key, value)
        return value, True

    def clear_memory(self) -> None:
        """Drop the in-memory tier; the persistent store is untouched."""
        self.memory.clear()


# ----------------------------------------------------------------------
# Stable fingerprints (persistent-tier keys).
# ----------------------------------------------------------------------


def _canonical(doc: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, repr fallback."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=repr)


def stable_digest(doc: Any) -> str:
    """A short hex digest of the canonical JSON encoding of *doc*.

    Stable across processes and Python invocations (no ``hash()``
    randomization), which is what lets one sqlite store serve many
    workers.
    """
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()


def dependency_fingerprint(phi: CFD) -> str:
    """The stable fingerprint of one dependency (wire-format canonical)."""
    return stable_digest(dependency_to_json(phi))


def sigma_fingerprint(sigma_cfds: Iterable[CFD]) -> str:
    """The stable fingerprint of a dependency set.

    *sigma_cfds* must already be the normal-form CFD set the engine keys
    on (:func:`repro.propagation.check._as_cfds` output), so an FD and
    its all-wildcard CFD embedding — and any input ordering or duplicate
    multiplicity — share one fingerprint, mirroring the in-memory
    ``frozenset`` key exactly.
    """
    return stable_digest(
        sorted({_canonical(dependency_to_json(phi)) for phi in sigma_cfds})
    )


def _view_doc(view: Any) -> Any:
    """The canonical document behind a view fingerprint.

    The :func:`repro.io.view_to_json` wire format plus the attribute
    *domains* of the view's extended schema — verdicts depend on finite
    domains (the chase enumerates their values), so views that differ
    only in domains must never share a persistent line.
    """
    if isinstance(view, SPCUView):
        return {"name": view.name, "branches": [_view_doc(b) for b in view.branches]}
    return {
        "view": spc_view_to_json(view),
        "domains": sorted(
            (attr, domain_to_json(domain))
            for attr, domain in view.extended_attributes().items()
        ),
    }


def view_fingerprint(view: Any) -> str:
    """The stable fingerprint of a view's normal form (domains included)."""
    return stable_digest(_view_doc(view))


def query_persist_key(
    kind: str,
    sigma_field: str,
    sigma_fp: str,
    view_fp: str,
    phi: CFD | None,
    max_instantiations: int | None,
    assume_infinite: bool,
) -> str:
    """The one persistent-key derivation every flavor goes through.

    ``sigma_field`` names how the Sigma slot was fingerprinted —
    ``"sigma"`` for the PR 2 whole-Sigma digest, ``"provenance"`` for
    the PR 4 per-relation composite
    (:mod:`repro.propagation.engine.keys`) — and is part of the hashed
    document, so the two keyspaces can never collide.  Engine settings
    are part of the key: a capped or assume-infinite run may
    legitimately answer differently, and must never share a line with
    the exact procedure.
    """
    doc = {
        "kind": kind,
        sigma_field: sigma_fp,
        "view": view_fp,
        "max_instantiations": max_instantiations,
        "assume_infinite": bool(assume_infinite),
    }
    if phi is not None:
        doc["phi"] = dependency_to_json(phi)
    return stable_digest(doc)


def verdict_persist_key(
    sigma_fp: str,
    view_fp: str,
    phi: CFD,
    max_instantiations: int | None,
    assume_infinite: bool,
) -> str:
    """The whole-Sigma-fingerprint verdict key (PR 2 flavor)."""
    return query_persist_key(
        "verdict", "sigma", sigma_fp, view_fp, phi, max_instantiations, assume_infinite
    )


def cover_persist_key(
    sigma_fp: str,
    view_fp: str,
    max_instantiations: int | None,
    assume_infinite: bool,
) -> str:
    """The whole-Sigma-fingerprint cover key (PR 2 flavor)."""
    return query_persist_key(
        "cover", "sigma", sigma_fp, view_fp, None, max_instantiations, assume_infinite
    )
