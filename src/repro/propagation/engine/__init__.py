"""The layered propagation engine package (facade).

PR 1-3 grew ``repro/propagation/engine.py`` into an 800-line monolith
mixing three concerns; this package splits them into explicit layers
(``docs/incremental.md`` and ``docs/architecture.md`` tell the story):

- :mod:`.keys` — the **provenance/keyspace layer**: per-relation Sigma
  fingerprints, the touched-relation sets recorded from the view's
  chase instance, and the composite cache keys that make Sigma edits
  invalidate only the lines whose provenance they meet.
- :mod:`.scheduler` — the **scheduler layer**: deterministic sharding of
  the ``k^2`` branch-pair chase of union views across the engine's
  worker pool, with per-shard stats merge-back and shard-count-invariant
  verdict combination.
- :mod:`.core` — the **engine core**: :class:`PropagationEngine` and
  :class:`EngineStats`, the batch hit/miss partitioning over the tiered
  caches, the closure fast path, and the miss fan-out.

This facade preserves the PR 1-3 public surface byte for byte: every
``from repro.propagation.engine import ...`` that worked against the
monolith (including the service layer's and the regression tests'
imports of ``_view_fingerprint`` / ``_all_wildcard`` /
``_FastPathContext``) keeps working, and the worker functions stay
importable under stable module paths for process-pool pickling.
"""

from .core import (
    EngineStats,
    PropagationEngine,
    _all_wildcard,
    _check_chunk_worker,
    _cover_chunk_worker,
    _FastPathContext,
    _view_fingerprint,
)
from .keys import (
    cover_key,
    key_view,
    make_stale_predicate,
    provenance_doc,
    provenance_fingerprint,
    relation_fingerprints,
    scoped_sigma,
    structural_view_key,
    touched_relations,
    verdict_key,
)
from .scheduler import combine_verdicts, plan_pairs

__all__ = [
    "EngineStats",
    "PropagationEngine",
    "combine_verdicts",
    "cover_key",
    "key_view",
    "make_stale_predicate",
    "plan_pairs",
    "provenance_doc",
    "provenance_fingerprint",
    "relation_fingerprints",
    "scoped_sigma",
    "structural_view_key",
    "touched_relations",
    "verdict_key",
]

# Private names re-exported for the service layer and the regression
# tests (part of the facade's compatibility contract).
_ = (_all_wildcard, _check_chunk_worker, _cover_chunk_worker, _FastPathContext, _view_fingerprint)
del _
