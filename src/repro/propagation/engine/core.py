"""The batch propagation engine: memoized chase, tiered caches, fan-out.

Every decision procedure in this package re-derives its symbolic tableaux
and re-runs its chases from scratch on each ``Sigma |=_V phi`` query.
That is fine for a single query; it is wasteful for the workloads the
paper's evaluation (and any production deployment) actually runs —
*batches* of queries against one view and one dependency set, where the
``k^2`` branch combinations, the coupled instance skeletons and the
attribute closures are shared structure.

This module is the *engine core* of the layered
:mod:`repro.propagation.engine` package; key construction lives in
:mod:`~repro.propagation.engine.keys` (the provenance layer) and the
branch-pair sharding in :mod:`~repro.propagation.engine.scheduler` (the
scheduler layer).

:class:`PropagationEngine` answers batches:

- ``check_many(sigma, view, phis)`` / ``check(...)`` — batched
  ``Sigma |=_V phi`` with three layers of tableau sharing (see
  :class:`~repro.propagation.check.BranchPairCache`): materialized branch
  pairs per view, coupled skeletons per LHS shape, and chased results per
  ``(Sigma, pair, LHS shape)`` in the single-chase setting.
- ``cover(sigma, view)`` / ``cover_many(sigma, views)`` — propagation
  covers with the input ``MinCover(Sigma)`` computed once per Sigma and
  shared across views, and SPCU candidate verification routed through the
  cached checker.
- A *closure fast path*: for all-FD dependencies over selection-free,
  constant-free, infinite-domain views, ``Sigma |=_V (X -> B)`` reduces
  to per-atom FD implication, decided by the memoized
  :func:`repro.core.fd.attribute_closure` without any chase at all.

Verdicts and covers are memoized in *tiered caches*
(:mod:`repro.propagation.cache`): an LRU-bounded in-memory tier
(``cache_size``; unbounded by default) optionally backed by a
schema-versioned sqlite store (``cache_dir``;
:mod:`repro.propagation.store`) — so warm lines survive restarts and are
shared across worker processes pointing at one cache directory.

Cache keys are **provenance-scoped** (:mod:`.keys`): Sigma enters every
key restricted to the relations the view's chase can read, as the
frozenset of its normalized CFDs on those relations (memory tier) and as
a composite of per-relation stable fingerprints (persistent tier).
Editing CFDs on relation ``R`` therefore moves only the keys of queries
whose provenance includes ``R`` — warm lines for untouched relations
survive in both tiers, which is what makes incremental Sigma updates
(``PropagationService.delta_sigma``) cheap.
:meth:`PropagationEngine.invalidate_relations` is the explicit hygiene
hook the delta path calls.

Each batch is partitioned into *hits* (answered inline from the memory
tier, the persistent tier, or the closure fast path) and *misses*.  With
``jobs > 1`` the misses fan out across a ``concurrent.futures`` pool
(``pool="thread"`` or ``"process"``) and the results are written back
through both tiers; with the default ``jobs=1`` misses resolve
sequentially through the shared tableau caches exactly as in the
single-process design.  On multi-branch union views with ``shards > 1``
the ``k^2`` branch-pair space of the misses is additionally dealt into
deterministic shards executed through the same pool (see
:mod:`.scheduler`), so one wide SPCU query parallelizes instead of
serializing its dominant loop.

``PropagationEngine(use_cache=False)`` disables every layer (including
the fast path, the persistent store, the fan-out and the sharding) and
routes queries through the plain single-query procedures — the
``--no-cache`` ablation baseline.  Counters in :class:`EngineStats` stay
live either way, which is what the perf-regression tests assert on.
"""

from __future__ import annotations

import concurrent.futures
import json
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ...algebra.spc import SPCView
from ...algebra.spcu import SPCUView
from ...core.cfd import CFD
from ...core.fd import FD, attribute_closure, closure_cache_info
from ...core.lru import LRUCache
from ...core.mincover import min_cover
from ...kernel.config import resolve_kernel
from ...core.values import is_wildcard
from ...io import dependencies_to_json, dependency_from_json
from ..cache import TieredCache, view_fingerprint
from ..check import (
    BranchPairCache,
    Counterexample,
    DependencyLike,
    ViewLike,
    _as_cfds,
    find_counterexample,
)
from ..cover import prop_cfd_spc, prop_cfd_spc_report
from ..rbr import RBRStats
from ..spcu_cover import prop_cfd_spcu
from ...store import DEFAULT_LEASE_TTL, BlobStore, SqliteStore, open_store
from .keys import (
    branch_touched_relations,
    cover_key,
    key_view,
    make_stale_predicate,
    provenance_fingerprint,
    scoped_sigma,
    structural_view_key,
    touched_relations,
    verdict_key,
)
from .scheduler import (
    WORKER_RBR_FIELDS,
    WORKER_STAT_FIELDS,
    _shard_check_worker,
    combine_verdicts,
    plan_pairs,
    shard_check_payloads,
)

__all__ = ["EngineStats", "PropagationEngine"]

#: The structural view key, under the name the rest of the code base (and
#: the regression tests) have imported since PR 2.
_view_fingerprint = structural_view_key


@dataclass
class EngineStats:
    """Instrumentation counters for one :class:`PropagationEngine`.

    ``chase_invocations`` counts chase runs *launched by check queries*
    (cache hits launch none), including chases run by fan-out and shard
    workers; with ``jobs=1`` the perf-regression tests bound it by the
    number of unique closures/LHS shapes in a batch (fan-out groups
    misses by LHS shape before chunking, so chunk boundaries can add at
    most ``jobs - 1`` duplicate chases per shape).
    ``verdict_hits``/``cover_hits`` count memory-tier hits; the
    ``persistent_*`` counters and ``evictions`` mirror the tiered memo
    caches and ``tableau_evictions`` the LRU-bounded
    :class:`~repro.propagation.check.BranchPairCache` layers;
    ``closure_hits``/``closure_misses`` are this engine's window onto
    the process-wide attribute-closure memo
    (:func:`repro.core.fd.closure_cache_info`) — deltas since engine
    construction, so engines sharing the process also share traffic;
    ``parallel_tasks`` counts pool tasks dispatched (miss chunks and
    shard payloads alike) and ``shard_tasks`` the shard payloads of the
    branch-pair scheduler specifically.
    ``pair_chases`` counts pair-restricted chase launches — the misses
    of the per-pair verdict memo on multi-branch unions, so the
    delta-restricted share of ``chase_invocations`` is distinguishable;
    ``cover_seed_hits``/``cover_seed_misses`` count SPCU cover
    recomputations whose previous cover (captured when ``delta_sigma``
    invalidated the line) survived verify-first re-checking intact,
    versus seeds with a retired or no-longer-propagating member.
    """

    check_queries: int = 0
    verdict_hits: int = 0
    closure_fast_path: int = 0
    closure_hits: int = 0
    closure_misses: int = 0
    chase_invocations: int = 0
    coupled_hits: int = 0
    coupled_misses: int = 0
    chased_hits: int = 0
    chased_misses: int = 0
    cover_queries: int = 0
    cover_hits: int = 0
    persistent_hits: int = 0
    persistent_misses: int = 0
    persistent_writes: int = 0
    evictions: int = 0
    tableau_evictions: int = 0
    parallel_tasks: int = 0
    shard_tasks: int = 0
    single_flight_waits: int = 0
    store_errors: int = 0
    pair_chases: int = 0
    cover_seed_hits: int = 0
    cover_seed_misses: int = 0
    rbr: RBRStats = field(default_factory=RBRStats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            "EngineStats("
            f"check_queries={self.check_queries}, "
            f"verdict_hits={self.verdict_hits}, "
            f"closure_fast_path={self.closure_fast_path}, "
            f"closure={self.closure_hits}h/{self.closure_misses}m, "
            f"chase_invocations={self.chase_invocations}, "
            f"coupled={self.coupled_hits}h/{self.coupled_misses}m, "
            f"chased={self.chased_hits}h/{self.chased_misses}m, "
            f"cover_queries={self.cover_queries}, cover_hits={self.cover_hits}, "
            f"persistent={self.persistent_hits}h/{self.persistent_misses}m/"
            f"{self.persistent_writes}w, "
            f"evictions={self.evictions}, "
            f"tableau_evictions={self.tableau_evictions}, "
            f"parallel_tasks={self.parallel_tasks}, "
            f"shard_tasks={self.shard_tasks}, "
            f"single_flight_waits={self.single_flight_waits}, "
            f"store_errors={self.store_errors}, "
            f"pair_chases={self.pair_chases}, "
            f"cover_seed={self.cover_seed_hits}h/{self.cover_seed_misses}m)"
        )


def _all_wildcard(phi: CFD) -> bool:
    return all(is_wildcard(e) for _, e in phi.lhs) and all(
        is_wildcard(e) for _, e in phi.rhs
    )


def _encode_cover(cover: list[CFD]) -> str:
    return json.dumps(dependencies_to_json(cover), sort_keys=True)


def _decode_cover(payload: str) -> list[CFD]:
    return [dependency_from_json(doc) for doc in json.loads(payload)]


def _chunks(items: list, n: int) -> list[list]:
    """Split *items* into at most *n* contiguous, near-even chunks."""
    n = max(1, min(n, len(items)))
    size, extra = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        if start < end:
            out.append(items[start:end])
        start = end
    return out


def _worker_stats(stats: "EngineStats") -> dict:
    """One chunk worker's report, in the shared worker-stats protocol
    (:data:`~repro.propagation.engine.scheduler.WORKER_STAT_FIELDS`)."""
    out = {name: getattr(stats, name) for name in WORKER_STAT_FIELDS}
    out["rbr"] = {name: getattr(stats.rbr, name) for name in WORKER_RBR_FIELDS}
    return out


def _check_chunk_worker(payload) -> tuple[list[bool], dict]:
    """Decide one chunk of cache-miss queries in a fresh engine.

    Module-level (and with plain-data payloads) so it pickles into a
    process pool; a thread pool calls it directly.  The fresh engine
    shares tableaux *within* the chunk and its counters are merged back
    into the dispatching engine's stats.
    """
    sigma, view, phis, max_instantiations, assume_infinite, kernel = payload
    engine = PropagationEngine(
        use_cache=True,
        max_instantiations=max_instantiations,
        assume_infinite=assume_infinite,
        kernel=kernel,
    )
    verdicts = engine.check_many(sigma, view, phis)
    return verdicts, _worker_stats(engine.stats)


def _cover_chunk_worker(payload) -> tuple[list[list[CFD]], dict]:
    """Compute one chunk of cache-miss covers in a fresh engine."""
    sigma, views, max_instantiations, assume_infinite, kernel = payload
    engine = PropagationEngine(
        use_cache=True,
        max_instantiations=max_instantiations,
        assume_infinite=assume_infinite,
        kernel=kernel,
    )
    covers = engine.cover_many(sigma, views)
    return covers, _worker_stats(engine.stats)


class PropagationEngine:
    """Answers batches of propagation queries with cross-query caching.

    Parameters
    ----------
    use_cache:
        ``False`` gives the uncached ablation baseline: every query runs
        the plain single-query procedure (no tableau reuse, no verdict
        memo, no closure fast path, no persistent store, no fan-out, no
        sharding).  Verdicts are guaranteed identical either way — the
        differential tests enforce it.
    max_instantiations / assume_infinite:
        Defaults forwarded to the underlying decision procedure (the
        finite-domain enumeration cap and the deliberately incomplete
        PTIME mode, respectively).  Both are part of every cache key.
    cache_dir:
        When set (and ``use_cache`` is on), verdicts and covers are
        additionally written to — and served from — a schema-versioned
        sqlite store under this directory, shared across processes.
    store_url:
        The persistent tier as a URL (``sqlite://DIR``,
        ``store://host:port``, ``redis://host:port`` — see
        :mod:`repro.store`); takes precedence over ``cache_dir``.  A
        network store that dies mid-run degrades to cache misses
        (counted in :attr:`EngineStats.store_errors`), never request
        failures.
    lease_ttl:
        Single-flight lease lifetime in seconds.  On a lease-capable
        store, each persistent-tier miss first tries to acquire the
        key's lease: the winner computes (and writes, and releases),
        the losers wait up to this long for the winner's payload
        (counted in :attr:`EngineStats.single_flight_waits`) before
        falling back to computing locally — so N workers missing the
        same fingerprint run one chase, and a crashed winner can delay
        but never wedge its waiters.
    cache_size:
        LRU capacity of each in-memory memo tier (verdicts and covers
        separately) *and* of the growing tableau layers (coupled
        skeletons, chased results) of the per-view
        :class:`~repro.propagation.check.BranchPairCache`; ``None``
        keeps them unbounded.  Evictions are counted in
        :attr:`EngineStats.evictions` (memo tiers) and
        :attr:`EngineStats.tableau_evictions` (tableau layers).
    jobs:
        With ``jobs > 1``, cache-miss queries in a batch fan out across
        a ``concurrent.futures`` pool of at most this many workers.
        ``jobs=1`` resolves misses sequentially through the shared
        tableau caches.
    pool:
        ``"thread"`` (default; zero-copy, safe everywhere — but the
        chase is pure CPU-bound Python, so under the GIL threads mostly
        buy overlap with the sqlite/store I/O, not chase speedup) or
        ``"process"`` (true CPU parallelism; inputs are pickled, and
        the pool is spawned once per engine and reused, so its startup
        cost amortizes across batches).
    shards:
        With ``shards > 1``, cache-miss checks on multi-branch union
        views deal their ``k^2`` branch-pair space into this many
        deterministic shards (see :mod:`.scheduler`) executed through
        the same ``jobs``/``pool`` executor with dynamic assignment.
        Verdicts (and covers, whose SPCU candidate verification funnels
        through the sharded checker) are invariant in the shard count.
    shard_index:
        Restrict this engine to evaluating *one* shard of the plan —
        the scale-out seam for distributing one view's pair space
        across processes or machines.  A shard verdict of ``True``
        means only "no violation within shard ``shard_index``"; it is
        memoized under shard-scoped keys and never written to the
        persistent store, and an orchestrator must AND the verdicts of
        all ``shards`` engines for the full answer.  Covers are *not*
        shard-combinable, so :meth:`cover`/:meth:`cover_many` raise on
        a ``shard_index``-restricted engine rather than return a
        silently partial cover.
    kernel:
        The chase/closure representation: ``"bitset"`` (the packed
        int-array fast path of :mod:`repro.kernel`) or ``"baseline"``
        (the frozenset/``SymVar`` reference implementation).  ``None``
        resolves the ``REPRO_KERNEL`` environment variable, defaulting
        to ``"bitset"``.  Answers are identical either way (the fuzz
        matrix and ``tests/test_kernel.py`` enforce it byte-for-byte);
        the kernel joins no cache key, so persisted lines are shared
        across kernels.  Constructs outside the packed fast path
        (finite domains, instantiation caps, unhashable constants,
        disabled caches) fall back to the baseline automatically.
    """

    def __init__(
        self,
        use_cache: bool = True,
        max_instantiations: int | None = None,
        assume_infinite: bool = False,
        *,
        cache_dir: str | None = None,
        cache_size: int | None = None,
        store_url: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        jobs: int = 1,
        pool: str = "thread",
        shards: int = 1,
        shard_index: int | None = None,
        kernel: str | None = None,
    ) -> None:
        if pool not in ("thread", "process"):
            raise ValueError(f"pool must be 'thread' or 'process', got {pool!r}")
        if jobs < 1:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if shard_index is not None and not 0 <= shard_index < shards:
            raise ValueError(
                f"shard_index must be in [0, {shards}), got {shard_index}"
            )
        self.use_cache = use_cache
        self.max_instantiations = max_instantiations
        self.assume_infinite = assume_infinite
        #: The chase/closure representation (``"bitset"`` | ``"baseline"``).
        #: ``None`` resolves through ``REPRO_KERNEL`` (default bitset).
        #: Deliberately NOT part of any memo or persist key: kernels are
        #: answer-identical (differential-tested), so cache lines warmed
        #: under one kernel stay valid under the other.
        self.kernel = resolve_kernel(kernel)
        self.jobs = jobs
        self.pool = pool
        self.shards = shards
        self.shard_index = shard_index
        self.cache_size = cache_size
        self.lease_ttl = lease_ttl
        self.stats = EngineStats()
        self._executor: concurrent.futures.Executor | None = None
        self._store: BlobStore | None = None
        if use_cache:
            if store_url:
                self._store = open_store(store_url)
            elif cache_dir is not None:
                self._store = SqliteStore.open_dir(cache_dir)
        self._verdict_tier = TieredCache(
            "verdicts",
            capacity=cache_size,
            store=self._store,
            encode=lambda v: "1" if v else "0",
            decode=lambda payload: payload == "1",
        )
        self._cover_tier = TieredCache(
            "covers",
            capacity=cache_size,
            store=self._store,
            encode=_encode_cover,
            decode=_decode_cover,
        )
        self._pair_caches: dict[tuple, BranchPairCache] = {}
        self._min_sigma: dict[frozenset, list[CFD]] = {}
        self._fast_contexts: dict[tuple, "_FastPathContext | None"] = {}
        # The delta-path memo layers (streaming Sigma).  Every key leads
        # with ``(scoped sigma frozenset, touched relations)`` so the
        # shared stale predicate sweeps them like every other tier:
        # - ``_pair_verdicts``: per branch-*pair* "no violation" bits of
        #   the k^2 SPCU check loop, Sigma-scoped to the pair's
        #   provenance — after an edit only pairs meeting the edited
        #   relation re-chase.
        # - ``_branch_covers``: per-branch ``PropCFD_SPC`` covers (the
        #   SPCU candidate pool), Sigma-scoped to the branch's atoms.
        # - ``_cover_seeds``: the previous cover of a view whose cover
        #   line ``invalidate_relations`` just dropped, keyed by view —
        #   the verify-first seed of the next recomputation.
        self._pair_verdicts = LRUCache(capacity=cache_size)
        self._branch_covers = LRUCache(capacity=cache_size)
        self._cover_seeds = LRUCache(capacity=cache_size)
        # Interned pair-scoped Sigma frozensets (see _pair_scoped_sigma):
        # derived values, swept alongside the layers they feed.
        self._pair_sigma_intern: dict[tuple, frozenset] = {}
        # Pure functions of their keys, memoized: the touched-relation
        # set per view (whole and per branch) and the stable fingerprints
        # of the persistent tier.
        self._touched: dict[tuple, frozenset[str]] = {}
        self._branch_touched: dict[tuple, tuple[frozenset[str], ...]] = {}
        # Structural view keys interned to small ints for the pair memo:
        # a k^2-unit check performs k^2 lookups per target, and hashing
        # the full nested view tuple on each one dwarfs the lookup.
        self._view_tokens: dict[tuple, int] = {}
        self._prov_fps: dict[tuple[frozenset, frozenset], str] = {}
        self._view_fps: dict[tuple, str] = {}
        #: Counter totals of caches no longer tracked (retired by clear()
        #: or by object turnover, the throwaway uncached-run caches, and
        #: the merged counters of fan-out workers).
        self._retired = {
            "chase_invocations": 0,
            "coupled_hits": 0,
            "coupled_misses": 0,
            "chased_hits": 0,
            "chased_misses": 0,
            "tableau_evictions": 0,
        }
        #: Process-wide closure-memo counters at construction; the stats
        #: report deltas from here (this engine's window of traffic).
        info = closure_cache_info()
        self._closure_base = (info.hits, info.misses)

    # ------------------------------------------------------------------
    # Cache plumbing.
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every in-memory tableau, verdict and cover memo.

        Stats survive, and so does the persistent store: a cleared engine
        re-fills its memory tier from sqlite on the next queries.
        """
        for cache in self._pair_caches.values():
            self._retire(cache)
        self._pair_caches.clear()
        self._verdict_tier.clear_memory()
        self._cover_tier.clear_memory()
        self._min_sigma.clear()
        self._fast_contexts.clear()
        self._pair_verdicts.clear()
        self._branch_covers.clear()
        self._cover_seeds.clear()
        self._pair_sigma_intern.clear()

    def close(self) -> None:
        """Close the persistent store and worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._store is not None:
            self._store.close()
            self._store = None
            self._verdict_tier.store = None
            self._cover_tier.store = None

    def __enter__(self) -> "PropagationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def invalidate_relations(
        self,
        relations: Iterable[str],
        sigma: Iterable[DependencyLike] | None = None,
    ) -> dict[str, int]:
        """Drop warm state whose provenance meets *relations*.

        The provenance-scoped keys already guarantee that a Sigma edit on
        *relations* can never be *served* a stale line — the edit moves
        the keys of every affected query.  This hook is the hygiene and
        observability half of delta-aware invalidation: it evicts the
        now-unreachable lines eagerly (instead of waiting for LRU churn)
        and reports how many lines were invalidated versus retained
        warm, which is what ``PropagationService.delta_sigma`` surfaces
        to callers.  Only memory tiers are touched; the persistent store
        keeps every row (old-provenance rows are unreachable under the
        new keys and harmless).

        *sigma* — the *pre-edit* dependency set being replaced — makes
        the sweep precise: only lines whose key was derived from that
        set are dropped, so lines warmed under *other* Sigmas that
        happen to mention the affected relations survive (they remain
        reachable — their keys never moved).  Without it every
        provenance-meeting line goes (the conservative sweep).
        """
        affected = frozenset(relations)
        old_cfds = None if sigma is None else _as_cfds(list(sigma))
        stale = make_stale_predicate(affected, old_cfds)

        invalidated = retained = 0
        for tier in (self._verdict_tier, self._cover_tier):
            for key in tier.memory.keys():
                if stale(key[0], self._touched.get(key_view(key))):
                    if tier is self._cover_tier:
                        # The line is about to die, but its value is the
                        # verify-first seed of the recomputation the edit
                        # just scheduled: stash it per view.
                        previous = tier.memory.get(key)
                        if previous:
                            self._cover_seeds.put(key_view(key), list(previous))
                    tier.memory.discard(key)
                    invalidated += 1
                else:
                    retained += 1
        # The delta-path layers carry their own provenance in the key
        # (``(scoped sigma, touched, ...)``), so the shared predicate
        # applies directly.  They are internal work-sharing state, not
        # servable lines, so they join neither count above — the
        # invalidated/retained report keeps meaning "memo-tier lines".
        for memo in (self._pair_verdicts, self._branch_covers):
            for key in memo.keys():
                if stale(key[0], key[1]):
                    memo.discard(key)
        # The interned pair-scoped sigma sets are pure functions of
        # their keys — never wrong, only unreachable once the view-
        # scoped Sigma they were derived under moves.  Drop entries
        # whose pair or whose sigma component mentions an affected
        # relation; the rest stay reachable byte-for-byte.
        for key in list(self._pair_sigma_intern):
            if key[1] & affected or any(
                phi.relation in affected for phi in key[0]
            ):
                del self._pair_sigma_intern[key]
        for key in list(self._fast_contexts):
            if stale(key[0], self._touched.get(key_view(key))):
                del self._fast_contexts[key]
        for key in list(self._min_sigma):
            if old_cfds is not None:
                if key == frozenset(old_cfds):
                    del self._min_sigma[key]
            elif any(phi.relation in affected for phi in key):
                del self._min_sigma[key]
        if old_cfds is None:
            # Pair-cache skeleton layers are Sigma-independent and the
            # chased layer is Sigma-keyed (stale entries unreachable),
            # so the precise sweep leaves them; only the conservative
            # sweep drops whole caches for affected views.
            for view_key, cache in list(self._pair_caches.items()):
                touched = self._touched.get(view_key)
                if touched is None or touched & affected:
                    self._retire(cache)
                    del self._pair_caches[view_key]
        for key in list(self._prov_fps):
            if stale(key[0], key[1]):
                del self._prov_fps[key]
        return {"invalidated": invalidated, "retained": retained}

    def _touched_relations(self, view: ViewLike, view_key: tuple) -> frozenset[str]:
        touched = self._touched.get(view_key)
        if touched is None:
            touched = touched_relations(view)
            self._touched[view_key] = touched
        return touched

    def _persist_fps(
        self,
        sigma_key: frozenset,
        scoped_cfds: list[CFD],
        touched: frozenset[str],
        view_key: tuple,
        view: ViewLike,
    ) -> tuple[str, str] | None:
        """Stable (provenance, view) fingerprints, or ``None`` when the
        line must not persist (no store, or a partial shard verdict)."""
        if self._store is None or self.shard_index is not None:
            return None
        prov_fp = self._prov_fps.get((sigma_key, touched))
        if prov_fp is None:
            prov_fp = provenance_fingerprint(scoped_cfds, touched)
            self._prov_fps[(sigma_key, touched)] = prov_fp
        view_fp = self._view_fps.get(view_key)
        if view_fp is None:
            view_fp = view_fingerprint(view)
            self._view_fps[view_key] = view_fp
        return prov_fp, view_fp

    def _memo_settings(self) -> tuple:
        """The settings component of memory-tier memo keys.

        A ``shard_index``-restricted engine computes *partial* verdicts,
        which must never share a line with (or be promoted into) the
        full-answer keyspace — the shard coordinates join the key.
        """
        settings = (self.max_instantiations, self.assume_infinite)
        if self.shard_index is not None:
            settings += ("shard", self.shards, self.shard_index)
        return settings

    def _fast_context(
        self,
        view: ViewLike,
        view_key: tuple,
        scoped_cfds: list[CFD],
        sigma_key: frozenset,
    ) -> "_FastPathContext | None":
        # Memoized per (scoped Sigma, view): the SPCU cover path funnels
        # every candidate through check(), which must not rebuild the
        # context.  Scoping Sigma first also widens applicability: CFDs
        # on relations the view never reads cannot disqualify the path.
        key = (sigma_key, view_key)
        if key not in self._fast_contexts:
            self._fast_contexts[key] = _FastPathContext.of(view, scoped_cfds)
        return self._fast_contexts[key]

    def _retire(self, cache: BranchPairCache) -> None:
        self._retired["chase_invocations"] += cache.chase_invocations
        self._retired["coupled_hits"] += cache.coupled_hits
        self._retired["coupled_misses"] += cache.coupled_misses
        self._retired["chased_hits"] += cache.chased_hits
        self._retired["chased_misses"] += cache.chased_misses
        self._retired["tableau_evictions"] += cache.evictions

    def _pair_cache(self, view: ViewLike, view_key: tuple) -> BranchPairCache:
        cache = self._pair_caches.get(view_key)
        if cache is None or cache.view is not view:
            # One tableau cache per view *object*: skeleton instances hold
            # SymVars handed out by the view's materialization, so a
            # structurally equal but distinct object gets a fresh cache
            # (the verdict/cover memos still share across objects).
            if cache is not None:
                self._retire(cache)
            cache = BranchPairCache(view, enabled=True, capacity=self.cache_size)
            self._pair_caches[view_key] = cache
        return cache

    def _sync_pair_stats(self) -> None:
        live = list(self._pair_caches.values())
        for name in self._retired:
            attr = "evictions" if name == "tableau_evictions" else name
            self.stats.__setattr__(
                name,
                self._retired[name] + sum(getattr(c, attr) for c in live),
            )
        info = closure_cache_info()
        self.stats.closure_hits = info.hits - self._closure_base[0]
        self.stats.closure_misses = info.misses - self._closure_base[1]

    def _sync_tier_stats(self) -> None:
        tiers = (self._verdict_tier, self._cover_tier)
        self.stats.persistent_hits = sum(t.persistent_hits for t in tiers)
        self.stats.persistent_misses = sum(t.persistent_misses for t in tiers)
        self.stats.persistent_writes = sum(t.persistent_writes for t in tiers)
        self.stats.evictions = sum(t.memory.evictions for t in tiers)
        self.stats.store_errors = sum(t.store_errors for t in tiers)

    # ------------------------------------------------------------------
    # Cross-process single-flight (lease-capable stores).
    # ------------------------------------------------------------------

    def _lease_partition(
        self, tier: TieredCache, pending: dict
    ) -> tuple[list, list]:
        """Split deduplicated misses into lease owners and waiters.

        For each persistable miss, try to acquire its single-flight
        lease on the shared store: winners compute (the *owned* list),
        losers wait for the winner's payload (the *waiters* list).
        Misses without a persist key — no store, or a shard-restricted
        engine — and every miss on a lease-less store are owned: no
        coordination, today's compute-locally behavior.  A store that
        fails the lease call degrades the same way (compute locally) —
        lease state is an optimization, never a correctness gate.
        """
        keys = list(pending)
        store = self._store
        if store is None or not getattr(store, "supports_leases", False):
            return keys, []
        owned, waiters = [], []
        for memo_key in keys:
            pkey = pending[memo_key][1]
            if pkey is None:
                owned.append(memo_key)
                continue
            try:
                acquired = store.acquire_lease(tier.table, pkey, self.lease_ttl)
            except Exception as exc:
                if getattr(exc, "kind", None) != "unavailable":
                    raise
                tier.store_errors += 1
                acquired = True
            (owned if acquired else waiters).append(memo_key)
        return owned, waiters

    def _release_lease(self, tier: TieredCache, pkey: str | None) -> None:
        if pkey is None or self._store is None:
            return
        if not getattr(self._store, "supports_leases", False):
            return
        try:
            self._store.release_lease(tier.table, pkey)
        except Exception as exc:
            if getattr(exc, "kind", None) != "unavailable":
                raise
            tier.store_errors += 1

    def _await_flights(
        self, tier: TieredCache, waiters: list, pending: dict, resolved: dict
    ) -> list:
        """Wait out other workers' flights; return what still needs computing.

        Each waiter polls the store for the lease owner's payload (up to
        ``lease_ttl``); arrivals are promoted into the memory tier and
        counted as ``single_flight_waits``.  Keys whose owner died (or
        whose store did) come back for a local compute.
        """
        leftovers = []
        for memo_key in waiters:
            pkey = pending[memo_key][1]
            value, ok = tier.wait_promote(memo_key, pkey, self.lease_ttl)
            if ok:
                self.stats.single_flight_waits += 1
                resolved[memo_key] = value
            else:
                leftovers.append(memo_key)
        return leftovers

    def _merge_worker_stats(self, worker_stats: dict) -> None:
        for name in WORKER_STAT_FIELDS:
            self._retired[name] += worker_stats[name]
        for name, value in worker_stats["rbr"].items():
            setattr(self.stats.rbr, name, getattr(self.stats.rbr, name) + value)

    def _fan_out(self, worker, payloads: list) -> list:
        """Run *payloads* through the engine's pool, merging stats.

        The executor is created lazily on the first fan-out and reused
        for the engine's lifetime (a per-batch pool spawn — especially a
        process pool's — would dwarf small batches), then shut down by
        :meth:`close`.  Each payload is its own task, so free workers
        pull the next unstarted one from the executor queue — dynamic
        assignment, whether the payloads are miss chunks or shards.
        """
        if self._executor is None:
            if self.pool == "process":
                executor_cls = concurrent.futures.ProcessPoolExecutor
            else:
                executor_cls = concurrent.futures.ThreadPoolExecutor
            self._executor = executor_cls(max_workers=self.jobs)
        self.stats.parallel_tasks += len(payloads)
        outcomes = list(self._executor.map(worker, payloads))
        results = []
        for result, worker_stats in outcomes:
            self._merge_worker_stats(worker_stats)
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # Batched checking.
    # ------------------------------------------------------------------

    def check(
        self, sigma: Iterable[DependencyLike], view: ViewLike, phi: DependencyLike
    ) -> bool:
        """Decide ``Sigma |=_V phi`` (single query through the caches)."""
        return self.check_many(sigma, view, [phi])[0]

    def check_many(
        self,
        sigma: Iterable[DependencyLike],
        view: ViewLike,
        phis: Sequence[DependencyLike],
    ) -> list[bool]:
        """Decide ``Sigma |=_V phi`` for every *phi*, sharing work.

        Verdicts are positionally aligned with *phis* and identical to
        ``propagates(sigma, view, phi)`` on each query.  The batch is
        partitioned into hits (memory tier, persistent tier, closure
        fast path — answered inline) and misses; with ``jobs > 1`` the
        misses fan out across the worker pool and are written back
        through both cache tiers, and on multi-branch unions with
        ``shards > 1`` each miss's ``k^2`` pair space is itself sharded
        across the pool.
        """
        sigma = list(sigma)
        if not self.use_cache:
            self.stats.check_queries += len(phis)
            cache = BranchPairCache(view, enabled=False)
            verdicts = [
                find_counterexample(
                    sigma,
                    view,
                    phi,
                    max_instantiations=self.max_instantiations,
                    assume_infinite=self.assume_infinite,
                    cache=cache,
                )
                is None
                for phi in phis
            ]
            self._retire(cache)
            self._sync_pair_stats()
            return verdicts

        sigma_cfds = _as_cfds(sigma)
        view_key = _view_fingerprint(view)
        touched = self._touched_relations(view, view_key)
        scoped = scoped_sigma(sigma_cfds, touched)
        sigma_key = frozenset(scoped)
        fast = self._fast_context(view, view_key, scoped, sigma_key)
        cache = self._pair_cache(view, view_key)
        fps = self._persist_fps(sigma_key, scoped, touched, view_key, view)
        settings = (self.max_instantiations, self.assume_infinite)
        memo_settings = self._memo_settings()

        def persist_key(phi_cfd: CFD) -> str | None:
            if fps is None:
                return None
            return verdict_key(fps[0], fps[1], phi_cfd, *settings)

        verdicts: list[bool | None] = [None] * len(phis)
        # Misses, deduplicated: memo key -> (phi, persist key, indices).
        pending: dict[tuple, tuple[CFD, str | None, list[int]]] = {}
        for idx, phi in enumerate(phis):
            self.stats.check_queries += 1
            phi_cfd = CFD.from_fd(phi) if isinstance(phi, FD) else phi
            memo_key = (sigma_key, view_key, phi_cfd, *memo_settings)
            if memo_key in pending:
                # Duplicate of an in-flight miss: answered from the memo
                # once the first occurrence resolves.
                self.stats.verdict_hits += 1
                pending[memo_key][2].append(idx)
                continue
            pkey = persist_key(phi_cfd)
            value, layer = self._verdict_tier.get(memo_key, pkey)
            if layer is not None:
                if layer == "memory":
                    self.stats.verdict_hits += 1
                verdicts[idx] = value
                continue
            if fast is not None:
                verdict = fast.decide(phi_cfd)
                if verdict is not None:
                    self.stats.closure_fast_path += 1
                    self._verdict_tier.put(memo_key, verdict, pkey)
                    verdicts[idx] = verdict
                    continue
            pending[memo_key] = (phi_cfd, pkey, [idx])

        if pending:
            tier = self._verdict_tier
            owned, waiting = self._lease_partition(tier, pending)
            resolved_map: dict[tuple, bool] = {}

            def compute(keys: list, *, release: bool) -> None:
                miss_phis = [pending[k][0] for k in keys]
                for memo_key, verdict in zip(
                    keys,
                    self._resolve_check_misses(
                        scoped, view, view_key, cache, miss_phis
                    ),
                ):
                    pkey = pending[memo_key][1]
                    tier.put(memo_key, verdict, pkey)
                    if release:
                        self._release_lease(tier, pkey)
                    resolved_map[memo_key] = verdict

            if owned:
                compute(owned, release=True)
            if waiting:
                leftovers = self._await_flights(tier, waiting, pending, resolved_map)
                if leftovers:
                    # The lease owner (or the store) died mid-flight;
                    # compute locally.  These leases were never ours, so
                    # there is nothing to release.
                    compute(leftovers, release=False)
            for memo_key, (_, _, indices) in pending.items():
                verdict = resolved_map[memo_key]
                for idx in indices:
                    verdicts[idx] = verdict

        self._sync_pair_stats()
        self._sync_tier_stats()
        return verdicts

    def _resolve_check_misses(
        self,
        scoped: list[CFD],
        view: ViewLike,
        view_key: tuple,
        cache: BranchPairCache,
        miss_phis: list[CFD],
    ) -> list[bool]:
        """Decide the deduplicated cache misses of one check batch.

        Three strategies, in order of preference: shard the branch-pair
        space (multi-branch unions with ``shards > 1`` or a pinned
        ``shard_index``), chunk the queries across the pool
        (``jobs > 1``), or resolve sequentially through the shared
        tableau caches — where multi-branch unions additionally go
        through the per-pair verdict memo (:meth:`_check_by_pairs`), so
        after a Sigma edit only pairs whose provenance meets the edited
        relation re-chase.
        """
        settings = (self.max_instantiations, self.assume_infinite)
        sharded = (
            isinstance(view, SPCUView)
            and len(view.branches) > 1
            and (self.shards > 1 or self.shard_index is not None)
        )
        if sharded:
            plans = plan_pairs(len(view.branches), self.shards)
            if self.shard_index is not None:
                plans = plans[self.shard_index : self.shard_index + 1]
            live_plans = [plan for plan in plans if plan]
            if not live_plans:  # a shard beyond the pair space: no violations
                return [True] * len(miss_phis)
            self.stats.shard_tasks += len(live_plans)
            if self.jobs > 1 and len(live_plans) > 1:
                # Pooled shards get private tableau caches (BranchPairCache
                # is not thread-safe); the lost cross-shard sharing is the
                # price of pair-space parallelism.
                payloads = shard_check_payloads(
                    scoped, view, miss_phis, *settings, live_plans, self.kernel
                )
                shard_violations = self._fan_out(_shard_check_worker, payloads)
                return combine_verdicts(shard_violations)
            # Inline shards run against the engine's own per-view cache,
            # so skeletons and chased results keep accruing across
            # batches exactly as in the unsharded path — and iterate
            # plans per query, so a refuted phi stops at its first
            # violating pair instead of evaluating the remaining shards
            # (the early exit the unsharded loop has).
            return [
                all(
                    find_counterexample(
                        scoped,
                        view,
                        phi_cfd,
                        max_instantiations=self.max_instantiations,
                        assume_infinite=self.assume_infinite,
                        cache=cache,
                        pairs=plan,
                        kernel=self.kernel,
                    )
                    is None
                    for plan in live_plans
                )
                for phi_cfd in miss_phis
            ]

        if self.jobs > 1 and len(miss_phis) > 1:
            # Group misses by LHS shape before chunking: queries sharing
            # a coupled skeleton/chase land in one worker's chunk, so
            # chunking costs (almost) no tableau sharing.
            order = sorted(range(len(miss_phis)), key=lambda i: repr(miss_phis[i].lhs))
            ordered = [miss_phis[i] for i in order]
            chunks = _chunks(ordered, self.jobs)
            payloads = [
                (scoped, view, chunk, *settings, self.kernel) for chunk in chunks
            ]
            flat = [
                v for vs in self._fan_out(_check_chunk_worker, payloads) for v in vs
            ]
            resolved: list = [None] * len(miss_phis)
            for position, verdict in zip(order, flat):
                resolved[position] = verdict
            return resolved

        if isinstance(view, SPCUView) and len(view.branches) > 1:
            return [
                self._check_by_pairs(scoped, view, view_key, cache, phi_cfd)
                for phi_cfd in miss_phis
            ]

        return [
            find_counterexample(
                scoped,
                view,
                phi_cfd,
                max_instantiations=self.max_instantiations,
                assume_infinite=self.assume_infinite,
                cache=cache,
                kernel=self.kernel,
            )
            is None
            for phi_cfd in miss_phis
        ]

    def _branch_provenance(
        self, view: SPCUView, view_key: tuple
    ) -> tuple[tuple[frozenset[str], ...], dict]:
        """Per-branch provenance plus the interned pair-union table.

        The ``(i, j) -> union`` frozensets are built once per view and
        reused for every unit, so their (cached) hashes make the pair
        memo lookups cheap — rebuilding the union per unit would re-hash
        every member on every lookup.
        """
        entry = self._branch_touched.get(view_key)
        if entry is None:
            per_branch = branch_touched_relations(view)
            k = len(per_branch)
            pair_unions = {
                (i, j): per_branch[i] | per_branch[j]
                for i in range(k)
                for j in range(k)
            }
            entry = (per_branch, pair_unions)
            self._branch_touched[view_key] = entry
        return entry

    def _view_token(self, view_key: tuple) -> int:
        token = self._view_tokens.get(view_key)
        if token is None:
            token = len(self._view_tokens)
            self._view_tokens[view_key] = token
        return token

    def _pair_scoped_sigma(
        self, sigma_key: frozenset, scoped: list[CFD], pair_touched: frozenset
    ) -> frozenset:
        """The pair-provenance restriction of *scoped*, interned.

        Keyed by ``(sigma_key, pair_touched)`` so repeated units (every
        target of a batch, every verification pass of a cover) reuse one
        frozenset object whose hash is computed exactly once; the
        interned entries are swept by :meth:`invalidate_relations` under
        the same staleness predicate as the memo layers they feed.
        """
        key = (sigma_key, pair_touched)
        pair_sigma = self._pair_sigma_intern.get(key)
        if pair_sigma is None:
            pair_sigma = frozenset(
                phi for phi in scoped if phi.relation in pair_touched
            )
            self._pair_sigma_intern[key] = pair_sigma
        return pair_sigma

    def _check_by_pairs(
        self,
        scoped: list[CFD],
        view: SPCUView,
        view_key: tuple,
        cache: BranchPairCache,
        phi_cfd: CFD,
    ) -> bool:
        """One multi-branch SPCU miss, unit by unit through the pair memo.

        Mirrors :func:`~repro.propagation.check.find_counterexample`'s
        loop exactly — normalized conjuncts in order (trivial ones
        skipped, unprojected attributes a ``KeyError``), the ``k^2``
        pairs row-major for pattern conjuncts and the diagonal branches
        for equality conjuncts, early exit on the first violating unit —
        but consults a per-unit verdict memo before launching the
        pair-restricted chase.  Each unit's memo key scopes Sigma to the
        *pair's* provenance (the relations branches ``i`` and ``j``
        read; CFDs elsewhere are vacuous for that pair), so a
        ``delta_sigma`` edit leaves every unit missing the edited
        relation warm — that is the delta-aware recomputation.  The
        chase itself still receives the full view-scoped Sigma and the
        shared tableau cache, so verdicts, chased-layer keys and chase
        order are byte-identical to the unrestricted sweep.
        """
        branches = list(view.branches)
        k = len(branches)
        projection = set(branches[0].projection)
        per_branch, pair_unions = self._branch_provenance(view, view_key)
        sigma_key = frozenset(scoped)
        view_token = self._view_token(view_key)
        settings = self._memo_settings()
        for normal in phi_cfd.normalize():
            if normal.is_trivial():
                continue
            missing = normal.attributes - projection
            if missing:
                raise KeyError(
                    f"view dependency references attributes {sorted(missing)} "
                    "that the view does not project"
                )
            if normal.is_equality:
                units = [(i, i) for i in range(k)]
            else:
                units = [(i, j) for i in range(k) for j in range(k)]
            for i, j in units:
                pair_touched = pair_unions[i, j]
                pair_sigma = self._pair_scoped_sigma(
                    sigma_key, scoped, pair_touched
                )
                memo_key = (
                    pair_sigma,
                    pair_touched,
                    view_token,
                    i,
                    j,
                    normal,
                    *settings,
                )
                clean = self._pair_verdicts.get(memo_key)
                if clean is None:
                    self.stats.pair_chases += 1
                    clean = (
                        find_counterexample(
                            scoped,
                            view,
                            normal,
                            max_instantiations=self.max_instantiations,
                            assume_infinite=self.assume_infinite,
                            cache=cache,
                            pairs=[(i, j)],
                            kernel=self.kernel,
                        )
                        is None
                    )
                    self._pair_verdicts.put(memo_key, clean)
                if not clean:
                    return False
        return True

    def find_counterexample(
        self, sigma: Iterable[DependencyLike], view: ViewLike, phi: DependencyLike
    ) -> Counterexample | None:
        """As :func:`repro.propagation.find_counterexample`, cache-backed.

        Witnesses are not memoized (each call may need a fresh concrete
        database), but tableau materialization and chases are shared.
        """
        cache = None
        if self.use_cache:
            cache = self._pair_cache(view, _view_fingerprint(view))
        witness = find_counterexample(
            sigma,
            view,
            phi,
            max_instantiations=self.max_instantiations,
            assume_infinite=self.assume_infinite,
            cache=cache,
            kernel=self.kernel if cache is not None else None,
        )
        if cache is not None:
            self._sync_pair_stats()
        return witness

    # ------------------------------------------------------------------
    # Batched covers.
    # ------------------------------------------------------------------

    def cover(
        self, sigma: Iterable[DependencyLike], view: ViewLike
    ) -> list[CFD]:
        """A minimal propagation cover of *sigma* via *view*."""
        return self.cover_many(sigma, [view])[0]

    def cover_many(
        self, sigma: Iterable[DependencyLike], views: Sequence[ViewLike]
    ) -> list[list[CFD]]:
        """Covers for many views over one Sigma, sharing the input MinCover.

        ``PropCFD_SPC`` spends its view-independent prefix (Figure 2
        line 1) minimizing Sigma; across a batch of views that cost is
        paid once and memoized by Sigma fingerprint.  SPCU candidate
        verification is routed through :meth:`check`, so the k^2 pair
        tableaux are shared across all candidates of a union view — and
        sharded across the pool when ``shards > 1``.  Like
        :meth:`check_many`, the batch partitions into tier hits and
        misses, and misses fan out across the pool when ``jobs > 1``.
        """
        if self.shard_index is not None:
            # SPCU candidate verification would funnel through the
            # pair-restricted checker, whose partial verdicts are not
            # AND-combinable into a cover — fail loudly instead of
            # returning a silently wrong one.
            raise ValueError(
                "covers are not available on a shard_index-restricted "
                "engine: partial shard verdicts cannot be combined into "
                "a cover; use a full engine (shard_index=None)"
            )
        sigma = list(sigma)
        sigma_cfds = _as_cfds(sigma)
        full_sigma_key = frozenset(sigma_cfds)
        settings = (self.max_instantiations, self.assume_infinite)
        memo_settings = self._memo_settings()
        covers: list[list[CFD] | None] = [None] * len(views)
        # Misses, deduplicated: memo key -> (view, persist key, indices).
        pending: dict[tuple, tuple[ViewLike, str | None, list[int]]] = {}
        for idx, view in enumerate(views):
            self.stats.cover_queries += 1
            if not self.use_cache:
                covers[idx] = self._compute_cover(
                    sigma, sigma_cfds, full_sigma_key, view
                )
                continue
            view_key = _view_fingerprint(view)
            touched = self._touched_relations(view, view_key)
            scoped = scoped_sigma(sigma_cfds, touched)
            sigma_key = frozenset(scoped)
            memo_key = (sigma_key, view_key, *memo_settings)
            if memo_key in pending:
                self.stats.cover_hits += 1
                pending[memo_key][2].append(idx)
                continue
            fps = self._persist_fps(sigma_key, scoped, touched, view_key, view)
            pkey = None if fps is None else cover_key(fps[0], fps[1], *settings)
            value, layer = self._cover_tier.get(memo_key, pkey)
            if layer is not None:
                if layer == "memory":
                    self.stats.cover_hits += 1
                covers[idx] = list(value)
                continue
            pending[memo_key] = (view, pkey, [idx])

        if pending:
            tier = self._cover_tier
            owned, waiting = self._lease_partition(tier, pending)
            resolved_map: dict[tuple, list[CFD]] = {}

            def compute(keys: list, *, release: bool) -> None:
                miss_views = [pending[k][0] for k in keys]
                if self.jobs > 1 and len(miss_views) > 1:
                    chunks = _chunks(miss_views, self.jobs)
                    payloads = [
                        (sigma, chunk, *settings, self.kernel) for chunk in chunks
                    ]
                    resolved = [
                        c
                        for cs in self._fan_out(_cover_chunk_worker, payloads)
                        for c in cs
                    ]
                else:
                    resolved = [
                        self._compute_cover(sigma, sigma_cfds, full_sigma_key, v)
                        for v in miss_views
                    ]
                for memo_key, cover in zip(keys, resolved):
                    pkey = pending[memo_key][1]
                    self._cover_tier.put(memo_key, cover, pkey)
                    if release:
                        self._release_lease(tier, pkey)
                    resolved_map[memo_key] = cover

            if owned:
                compute(owned, release=True)
            if waiting:
                leftovers = self._await_flights(tier, waiting, pending, resolved_map)
                if leftovers:
                    compute(leftovers, release=False)
            for memo_key, (_, _, indices) in pending.items():
                cover = resolved_map[memo_key]
                for idx in indices:
                    covers[idx] = list(cover)

        self._sync_pair_stats()  # fold merged fan-out worker counters in
        self._sync_tier_stats()
        return covers

    def _minimized_sigma(self, sigma_cfds: list[CFD], sigma_key: frozenset) -> list[CFD]:
        if not self.use_cache:
            return min_cover(sigma_cfds)
        minimized = self._min_sigma.get(sigma_key)
        if minimized is None:
            minimized = min_cover(sigma_cfds)
            self._min_sigma[sigma_key] = minimized
        return minimized

    def _compute_cover(
        self,
        sigma: list[DependencyLike],
        sigma_cfds: list[CFD],
        sigma_key: frozenset,
        view: ViewLike,
    ) -> list[CFD]:
        if isinstance(view, SPCUView):
            if len(view.branches) == 1:
                view = view.branches[0]
            else:
                # Candidate verification must honor this engine's settings
                # in BOTH modes — cached and uncached covers are required
                # to be identical, including under assume_infinite.  The
                # batched verifier shares Sigma normalization and the k^2
                # pair tableaux across all candidates, and fans cache
                # misses out across the pool (sharding the pair space
                # when shards > 1).
                if not self.use_cache:
                    return prop_cfd_spcu(
                        sigma,
                        view,
                        max_instantiations=self.max_instantiations,
                        check_many=self.check_many,
                    )
                # The cached path additionally threads the delta-aware
                # seams: a provenance-keyed memo under the per-branch
                # candidate pools (after an edit only branches reading
                # the edited relation recompute), and the view's
                # previous cover — captured by invalidate_relations —
                # as the verify-first seed.  Neither changes the
                # answer: the pool generator is the verbatim
                # prop_cfd_spc call (scoping is an invariant, see
                # prop_cfd_spc_report), and the emitted cover is still
                # MinCover of the full pool's survivors.
                view_key = _view_fingerprint(view)

                def branch_cover(sigma_arg, branch, partition_size):
                    b_touched = touched_relations(branch)
                    memo_key = (
                        frozenset(scoped_sigma(sigma_cfds, b_touched)),
                        b_touched,
                        _view_fingerprint(branch),
                        partition_size,
                    )
                    cover = self._branch_covers.get(memo_key)
                    if cover is None:
                        cover = prop_cfd_spc(
                            sigma_arg,
                            branch,
                            partition_size=partition_size,
                            sigma_scope=b_touched,
                        )
                        self._branch_covers.put(memo_key, cover)
                    return list(cover)

                seed = self._cover_seeds.get(view_key)
                if seed is not None:
                    self._cover_seeds.discard(view_key)

                def seed_report(hit: bool) -> None:
                    if hit:
                        self.stats.cover_seed_hits += 1
                    else:
                        self.stats.cover_seed_misses += 1

                return prop_cfd_spcu(
                    sigma,
                    view,
                    max_instantiations=self.max_instantiations,
                    check_many=self.check_many,
                    branch_cover=branch_cover,
                    seed=seed,
                    seed_report=seed_report if seed else None,
                )
        minimized = self._minimized_sigma(sigma_cfds, sigma_key)
        report = prop_cfd_spc_report(
            minimized,
            view,
            minimize_input=False,
            rbr_stats=self.stats.rbr,
            kernel=self.kernel,
        )
        return report.cover


class _FastPathContext:
    """The closure fast path for FD-only Sigma over projection-style views.

    Applicability (checked once per batch): a single-branch view with no
    selection condition, no constant relation and no finite-domain
    attribute, and a (provenance-scoped) Sigma consisting solely of
    all-wildcard CFDs (plain FDs).  For such views a view tuple is an
    arbitrary combination of one free tuple per atom, so
    ``Sigma |=_V (X -> B)`` holds iff the embedded per-atom implication
    does: with ``B`` produced by atom ``j``, ``X ∩ attrs(j) -> B`` must
    follow from Sigma on atom ``j``'s source — attributes of other atoms
    never constrain ``B`` (two view tuples may agree on them while
    drawing distinct source tuples).  That implication is exactly
    ``B ∈ closure(X_j)``, served by the memoized
    :func:`repro.core.fd.attribute_closure`.
    """

    def __init__(self, branch: SPCView, sigma_cfds: list[CFD]) -> None:
        self._attr_to_atom: dict[str, int] = {}
        self._to_source: list[dict[str, str]] = []
        self._atom_fds: list[frozenset[FD]] = []
        for index, atom in enumerate(branch.atoms):
            inverse = {v: s for s, v in atom.mapping}
            self._to_source.append(inverse)
            for view_name in atom.view_attributes:
                self._attr_to_atom[view_name] = index
            self._atom_fds.append(
                frozenset(
                    phi.embedded_fd()
                    for phi in sigma_cfds
                    if phi.relation == atom.source
                )
            )
        self._projection = set(branch.projection)

    @classmethod
    def of(cls, view: ViewLike, sigma_cfds: list[CFD]) -> "_FastPathContext | None":
        branches = (
            list(view.branches) if isinstance(view, SPCUView) else [view]
        )
        if len(branches) != 1:
            return None
        branch = branches[0]
        if not isinstance(branch, SPCView):
            return None
        if branch.selection or branch.constants or branch.unsatisfiable:
            return None
        if branch.has_finite_domain_attribute():
            return None
        if not all(_all_wildcard(phi) for phi in sigma_cfds):
            return None
        return cls(branch, sigma_cfds)

    def decide(self, phi: CFD) -> bool | None:
        """The fast-path verdict, or ``None`` when *phi* is out of scope."""
        if phi.is_equality or not _all_wildcard(phi):
            return None
        lhs = set(phi.lhs_attrs)
        for normal in phi.normalize():
            if normal.is_trivial():
                continue
            missing = normal.attributes - self._projection
            if missing:
                # Mirror the decision procedure's contract exactly: only a
                # nontrivial conjunct referencing unprojected attributes
                # is an error.
                raise KeyError(
                    f"view dependency references attributes {sorted(missing)} "
                    "that the view does not project"
                )
            rhs_attr = normal.rhs_attr
            if rhs_attr in lhs:
                continue
            atom_index = self._attr_to_atom[rhs_attr]
            inverse = self._to_source[atom_index]
            source_lhs = frozenset(inverse[a] for a in lhs if a in inverse)
            closure = attribute_closure(source_lhs, self._atom_fds[atom_index])
            if inverse[rhs_attr] not in closure:
                return False

        return True
