"""The provenance/keyspace layer: per-relation fingerprints, composite keys.

Through PR 3 the engine keyed every cache line on a *whole-Sigma*
fingerprint: one sha256 over the entire normalized dependency set.
Correct, but maximally coarse — editing one CFD on one relation moved
every query of every view onto a cold key, discarding warm lines for
relations the edit never mentioned.  In production Sigma evolves
incrementally (a rule added here, one retired there), so the whole-Sigma
key made *every* deployment a cold start.

This module replaces it with **provenance-scoped composite keys**:

- :func:`touched_relations` — the set of source relations a query on a
  view can ever read.  This is exactly the relation set of the chase's
  symbolic instance: :func:`~repro.tableau.tableau.materialize_branch`
  creates one block of tuples per relation atom and nothing else, and a
  CFD on a relation with no tuples never fires, so the verdict (and the
  cover — ``MinCover`` and ``rename_source_cfds`` are per-relation) is a
  function of ``Sigma`` *restricted to these relations*.
- :func:`scoped_sigma` / the structural memory-tier key — Sigma filtered
  to the touched relations before it enters any key, so the in-memory
  LRU tiers survive edits to untouched relations within one process.
- :func:`relation_fingerprints` / :func:`provenance_fingerprint` — the
  persistent-tier analogue: one stable fingerprint *per relation's* CFD
  group, combined into a composite ``[(relation, fingerprint), ...]``
  document covering only the touched relations.  Editing CFDs on
  relation ``R`` changes only the keys whose provenance includes ``R``;
  warm sqlite rows for every other view stay servable across processes
  and restarts.

Key-schema change = store schema change: the composite keys are
:data:`~repro.propagation.store.SCHEMA_VERSION` 2; stores written under
the PR 2/3 whole-Sigma keys (version 1) are dropped on open — the
migration-to-cold fallback, never a misread line.

:func:`structural_view_key` (the process-local view key, formerly
``engine._view_fingerprint``) also lives here so every key constructor
is in one module.  See ``docs/incremental.md`` for the invalidation
rules this keyspace implies.
"""

from __future__ import annotations

from typing import Any, Iterable

from ...algebra.spcu import SPCUView
from ...core.cfd import CFD
from ...io import dependency_to_json
from ..cache import _canonical, query_persist_key, stable_digest
from ..check import ViewLike, _branches

__all__ = [
    "branch_touched_relations",
    "cover_key",
    "key_view",
    "make_stale_predicate",
    "provenance_doc",
    "provenance_fingerprint",
    "relation_fingerprints",
    "scoped_sigma",
    "structural_view_key",
    "touched_relations",
    "verdict_key",
]

#: The per-relation fingerprint of "no CFDs on this relation".  Spelled
#: explicitly (rather than omitting the relation) so a composite key
#: document always lists every touched relation — adding the first CFD
#: on a relation and deleting the last one are both visible key moves.
EMPTY_RELATION_FP = "-"


# ----------------------------------------------------------------------
# Provenance: which relations can a query on this view read?
# ----------------------------------------------------------------------


def touched_relations(view: ViewLike) -> frozenset[str]:
    """The source relations a propagation query on *view* depends on.

    The union of the relation-atom sources across every branch: the
    chase's symbolic instance contains exactly one tuple block per atom,
    so CFDs on any other relation are vacuous for both verdicts and
    covers.
    """
    return frozenset(
        atom.source for branch in _branches(view) for atom in branch.atoms
    )


def scoped_sigma(
    sigma_cfds: Iterable[CFD], touched: frozenset[str]
) -> list[CFD]:
    """*sigma_cfds* restricted to the touched relations (order kept)."""
    return [phi for phi in sigma_cfds if phi.relation in touched]


def branch_touched_relations(view: ViewLike) -> tuple[frozenset[str], ...]:
    """Per-branch touched-relation sets, in branch order.

    The provenance of one branch *pair* ``(i, j)`` of the SPCU check
    loop is the union of entries ``i`` and ``j``: the coupled instance
    materializes exactly those two branches' atoms, so CFDs on any other
    relation are vacuous for that pair's chase.  The engine's delta path
    keys its per-pair verdict memo on Sigma scoped to this union — after
    a ``delta_sigma`` edit only the pairs whose provenance meets the
    edited relation re-chase.
    """
    return tuple(
        frozenset(atom.source for atom in branch.atoms)
        for branch in _branches(view)
    )


# ----------------------------------------------------------------------
# Stable per-relation fingerprints and the composite key documents.
# ----------------------------------------------------------------------


def relation_fingerprints(sigma_cfds: Iterable[CFD]) -> dict[str, str]:
    """One stable fingerprint per relation's normalized CFD group.

    *sigma_cfds* must be normal-form CFDs (``_as_cfds`` output).  Each
    group is deduplicated and sorted canonically before hashing, so the
    fingerprint is order- and multiplicity-insensitive exactly like the
    whole-Sigma fingerprint it refines — and the whole-Sigma document is
    recoverable as the sorted union of the groups.
    """
    groups: dict[str, set[str]] = {}
    for phi in sigma_cfds:
        groups.setdefault(phi.relation, set()).add(
            _canonical(dependency_to_json(phi))
        )
    return {
        relation: stable_digest(sorted(docs))
        for relation, docs in groups.items()
    }


def provenance_doc(
    sigma_cfds: Iterable[CFD], touched: frozenset[str]
) -> list[list[str]]:
    """The composite key document: ``[[relation, fingerprint], ...]``.

    Sorted by relation name; every touched relation appears, with
    :data:`EMPTY_RELATION_FP` standing in when Sigma has no CFDs on it.
    """
    fps = relation_fingerprints(sigma_cfds)
    return [
        [relation, fps.get(relation, EMPTY_RELATION_FP)]
        for relation in sorted(touched)
    ]


def provenance_fingerprint(
    sigma_cfds: Iterable[CFD], touched: frozenset[str]
) -> str:
    """The stable digest of :func:`provenance_doc` (the composite key)."""
    return stable_digest(provenance_doc(sigma_cfds, touched))


def verdict_key(
    provenance_fp: str,
    view_fp: str,
    phi: CFD,
    max_instantiations: int | None,
    assume_infinite: bool,
) -> str:
    """The persistent key of one ``Sigma |=_V phi`` verdict.

    The one shared derivation
    (:func:`repro.propagation.cache.query_persist_key`) with the Sigma
    slot holding the provenance composite instead of the PR 2
    whole-Sigma fingerprint, so the key survives Sigma edits outside
    the view's relations.
    """
    return query_persist_key(
        "verdict",
        "provenance",
        provenance_fp,
        view_fp,
        phi,
        max_instantiations,
        assume_infinite,
    )


def cover_key(
    provenance_fp: str,
    view_fp: str,
    max_instantiations: int | None,
    assume_infinite: bool,
) -> str:
    """The persistent key of one propagation cover (provenance-scoped)."""
    return query_persist_key(
        "cover",
        "provenance",
        provenance_fp,
        view_fp,
        None,
        max_instantiations,
        assume_infinite,
    )


# ----------------------------------------------------------------------
# The process-local structural view key.
# ----------------------------------------------------------------------


def structural_view_key(view: ViewLike) -> tuple:
    """A structural key for a view's normal form (process-local tier).

    Attribute *domains* are part of the key: verdicts depend on finite
    domains (the chase enumerates their values), so structurally equal
    views over schemas that differ only in domains must never share a
    cache line.
    """
    if isinstance(view, SPCUView):
        # The union's own name is part of the key: covers embed it in
        # every returned CFD, so same-branch unions with different names
        # must not share a line.
        return ("U", view.name) + tuple(
            structural_view_key(b) for b in view.branches
        )
    return (
        view.name,
        tuple(view.atoms),
        tuple(view.selection),
        tuple(view.projection),
        tuple(sorted(view.constants.items())),
        view.unsatisfiable,
        tuple(
            sorted(
                (attr, domain.name, domain.values)
                for attr, domain in view.extended_attributes().items()
            )
        ),
    )


def make_stale_predicate(affected: frozenset, old_cfds: list[CFD] | None):
    """The one invalidation rule every delta sweep applies.

    Returns ``stale(sigma_component, touched)`` deciding whether a memo
    line — keyed on a provenance-scoped Sigma ``frozenset`` plus a view
    whose touched-relation set is *touched* — should be dropped after an
    edit to *old_cfds* (the pre-edit normalized set; ``None`` = unknown,
    sweep conservatively) on the *affected* relations.  A line survives
    iff its provenance misses the affected relations, or it was derived
    from some *other* Sigma (its key never moved, so it stays reachable
    and correct).  The engine's :meth:`~repro.propagation.engine.core.
    PropagationEngine.invalidate_relations` and the service's
    route/emptiness-memo sweep both call this, so the two can never
    diverge.  Scoped old-Sigma sets are memoized per touched set — the
    sweep stays linear in the number of lines.
    """
    old_scoped: dict[frozenset, frozenset] = {}

    def stale(sigma_component, touched: frozenset | None) -> bool:
        if touched is not None and not (touched & affected):
            return False
        if old_cfds is None or touched is None:
            return True
        scoped = old_scoped.get(touched)
        if scoped is None:
            scoped = frozenset(
                phi for phi in old_cfds if phi.relation in touched
            )
            old_scoped[touched] = scoped
        return sigma_component == scoped

    return stale


def key_view(memo_key: tuple) -> Any:
    """The view component of an engine memo key.

    Every memory-tier key the engine builds — verdict memo, cover memo,
    fast-path context — leads with ``(scoped sigma, view key, ...)``;
    the invalidation scans in ``engine/core.py`` go through this helper
    so the layout is stated in exactly one place.
    """
    return memo_key[1]
