"""The scheduler layer: sharding the k² branch-pair chase of union views.

The SPCU decision procedure (Theorem 3.1/3.5) examines every *ordered
pair* of union branches — ``k²`` coupled tableaux per query shape for a
``k``-branch view.  Through PR 3 that loop ran sequentially inside one
``find_counterexample`` call, so a wide union serialized its dominant
cost even on a multi-core worker (the ``jobs`` fan-out parallelizes
across *queries*, not within one query's pair space).

This module partitions the pair space into deterministic **shards**:

- :func:`plan_pairs` — the ``k²`` ordered pairs dealt round-robin into
  ``shards`` strides, diagonal pairs first so the equality-form work
  they carry spreads across shards.  Shard contents depend only on
  ``(k, shards)`` — never on timing.
- :func:`shard_check_payloads` / :func:`_shard_check_worker` — one
  payload per non-empty shard, answering *every* miss query of the batch
  restricted to that shard's pairs.  Workers run through the engine's
  existing thread/process pool: each shard is submitted as its own task
  and idle workers pull the next unstarted shard from the executor
  queue — work-stealing-style dynamic assignment, so one slow shard
  does not idle the rest of the pool.  Each worker shares materialized
  /coupled/chased tableaux *within* its shard across all queries via a
  private :class:`~repro.propagation.check.BranchPairCache`, and
  reports its tableau counters back for merge into the dispatching
  engine's :class:`~repro.propagation.engine.EngineStats`.
- :func:`combine_verdicts` — ``Sigma |=_V phi`` holds iff **no** shard
  finds a violating pair, so verdicts are invariant in the shard count
  (``tests/test_incremental.py`` pins ``shards=1`` vs ``shards>1``
  equality for verdicts and covers).

The engine drives this for cache-miss checks on multi-branch SPCU views
when ``shards > 1``; SPCU *cover* candidate verification funnels through
the same ``check_many`` and therefore shards for free.  The
``shard_index`` knob makes one engine evaluate a single shard (for
scale-out across processes/machines): its verdicts mean "no violation
in shard ``i``" — sound for refutation, partial for propagation — so
they are memoized under shard-scoped keys and never persisted.
"""

from __future__ import annotations

from typing import Sequence

from ...core.cfd import CFD
from ..check import (
    BranchPairCache,
    DependencyLike,
    ViewLike,
    find_counterexample,
)

__all__ = [
    "WORKER_RBR_FIELDS",
    "WORKER_STAT_FIELDS",
    "combine_verdicts",
    "plan_pairs",
    "shard_check_payloads",
]

Pair = tuple[int, int]

#: The worker-stats protocol: the tableau counters every pool worker —
#: miss-chunk engines and shard workers alike — reports back for merge
#: into the dispatching engine's stats, plus the RBR sub-block.  The
#: engine's ``_worker_stats``/``_merge_worker_stats`` and the shard
#: worker below all derive their dict shape from these two tuples, so
#: adding a counter cannot desynchronize the paths.
WORKER_STAT_FIELDS = (
    "chase_invocations",
    "coupled_hits",
    "coupled_misses",
    "chased_hits",
    "chased_misses",
)
WORKER_RBR_FIELDS = (
    "resolvent_pairs",
    "resolvents_kept",
    "drops",
    "mincover_passes",
)


def plan_pairs(num_branches: int, shards: int) -> list[tuple[Pair, ...]]:
    """Deal the ``k²`` ordered branch pairs into ``shards`` strides.

    The deal order is *diagonal-first*: the ``k`` diagonal pairs, then
    the off-diagonal pairs in row-major order, strided round-robin.
    Diagonal pairs also carry the equality-form conjunct work (a shard
    runs branch ``i``'s equality chases iff it owns ``(i, i)``), so
    they must spread across shards; a plain row-major stride parks
    every diagonal in shard 0 whenever ``shards`` divides ``k + 1``
    (diagonal ``(i, i)`` sits at row-major index ``i * (k + 1)``),
    serializing that work in one straggler.

    Returns exactly ``shards`` tuples (trailing ones empty when
    ``shards > k²``); deterministic in ``(num_branches, shards)``.
    """
    if num_branches < 1:
        raise ValueError(f"num_branches must be positive, got {num_branches}")
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    ordered = [(i, i) for i in range(num_branches)] + [
        (i, j)
        for i in range(num_branches)
        for j in range(num_branches)
        if i != j
    ]
    return [tuple(ordered[s::shards]) for s in range(shards)]


def shard_check_payloads(
    sigma: Sequence[CFD],
    view: ViewLike,
    phis: Sequence[DependencyLike],
    max_instantiations: int | None,
    assume_infinite: bool,
    plans: Sequence[tuple[Pair, ...]],
    kernel: str | None = None,
) -> list[tuple]:
    """One worker payload per shard plan (plain data: picklable).

    Callers filter empty plans first (the engine's ``live_plans``), so
    payloads align one-to-one with the plans given — which
    :func:`combine_verdicts` and the shard-task counters rely on.
    """
    return [
        (
            list(sigma),
            view,
            list(phis),
            plan,
            max_instantiations,
            assume_infinite,
            kernel,
        )
        for plan in plans
    ]


def _shard_check_worker(payload: tuple) -> tuple[list[bool], dict]:
    """Find violations for every query within one shard's pair space.

    Module-level (and plain-data payloads) so it pickles into a process
    pool; a thread pool calls it directly.  Returns per-query *violation*
    flags — ``True`` means this shard refutes ``Sigma |=_V phi`` — plus
    the shard's tableau counters for stats merge-back.
    """
    sigma, view, phis, pairs, max_instantiations, assume_infinite, kernel = payload
    cache = BranchPairCache(view, enabled=True)
    violations = [
        find_counterexample(
            sigma,
            view,
            phi,
            max_instantiations=max_instantiations,
            assume_infinite=assume_infinite,
            cache=cache,
            pairs=pairs,
            kernel=kernel,
        )
        is not None
        for phi in phis
    ]
    # BranchPairCache carries every counter in WORKER_STAT_FIELDS by the
    # same name; shard workers run no RBR, so that block is zeroed.
    stats = {name: getattr(cache, name) for name in WORKER_STAT_FIELDS}
    stats["rbr"] = {name: 0 for name in WORKER_RBR_FIELDS}
    return violations, stats


def combine_verdicts(shard_violations: Sequence[Sequence[bool]]) -> list[bool]:
    """Merge per-shard violation flags into final verdicts.

    ``phi`` is propagated iff no shard found a violating branch pair —
    the row-wise NOR of the shard results, which makes the combined
    verdict independent of how the pair space was dealt.
    """
    if not shard_violations:
        return []
    width = len(shard_violations[0])
    return [
        not any(shard[idx] for shard in shard_violations)
        for idx in range(width)
    ]
