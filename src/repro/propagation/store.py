"""Compatibility alias: the sqlite store moved to :mod:`repro.store.sqlite`.

PR 8 extracted the persistent tier into the :mod:`repro.store`
subsystem (an abstract :class:`~repro.store.base.BlobStore` with
sqlite/network/redis backings behind a URL scheme registry).  This
module keeps the PR 2 import path alive as a *true alias*: it replaces
itself in ``sys.modules`` with :mod:`repro.store.sqlite`, so

- ``from repro.propagation.store import SqliteStore, SCHEMA_VERSION``
  keeps working, and
- monkeypatching ``repro.propagation.store.SCHEMA_VERSION`` (as the
  version-mismatch tests do) patches the one real module, not a stale
  re-export.
"""

import sys

from ..store import sqlite as _sqlite

sys.modules[__name__] = _sqlite
