"""The emptiness problem for CFDs and views (Section 3.3).

``V`` is *always empty* under ``Sigma`` when every instance satisfying
``Sigma`` yields ``V(D) = {}`` — e.g. Example 3.1, where a source CFD pins
``B = b1`` while the view selects ``B = b2``.  An always-empty view
satisfies every view dependency, so ``PropCFD_SPC`` must detect the
situation (Lemma 4.5).

Procedure (Theorems 3.7/3.8): materialize each disjunct's tableau, chase
with ``Sigma``; the disjunct can produce tuples iff some finite-domain
instantiation chases to completion (the surviving tableau instantiates to
a witness database).  PTIME without finite domains, NP-enumeration with.
"""

from __future__ import annotations

from typing import Iterable

from ..algebra.instance import DatabaseInstance
from ..algebra.spc import SPCView
from ..core.chase import (
    ChaseStatus,
    SymbolicInstance,
    VarFactory,
    chase_with_instantiations,
    premise_positions,
)
from .check import DependencyLike, ViewLike, _as_cfds, _branches


def view_is_empty(
    sigma: Iterable[DependencyLike],
    view: ViewLike,
    max_instantiations: int | None = None,
) -> bool:
    """Whether ``V(D)`` is empty for every ``D |= Sigma``.

    With ``max_instantiations`` set the enumeration is truncated: a
    ``False`` answer (some witness found) is always sound, a ``True``
    answer may be pessimistic.
    """
    return nonempty_witness(sigma, view, max_instantiations) is None


def nonempty_witness(
    sigma: Iterable[DependencyLike],
    view: ViewLike,
    max_instantiations: int | None = None,
) -> DatabaseInstance | None:
    """A concrete ``D |= Sigma`` with ``V(D)`` nonempty, or ``None``."""
    sigma_cfds = _as_cfds(sigma)
    for branch in _branches(view):
        instance = SymbolicInstance()
        factory = VarFactory()
        cells = _materialize(branch, instance, factory)
        if cells is None:
            continue
        for result in chase_with_instantiations(
            instance,
            sigma_cfds,
            limit=max_instantiations,
            positions=premise_positions(sigma_cfds),
        ):
            if result.status is ChaseStatus.SATISFIABLE:
                concrete = result.instance.instantiate().concrete()
                return DatabaseInstance(branch.source_schema, concrete)
    return None


def _materialize(branch: SPCView, instance: SymbolicInstance, factory: VarFactory):
    from ..tableau.tableau import materialize_branch

    return materialize_branch(branch, instance, factory)
