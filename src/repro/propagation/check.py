"""The dependency propagation test: ``Sigma |=_V phi`` (Theorems 3.1-3.5).

The procedure is the appendix construction made executable:

1. For every ordered pair of branches ``(e_i, e_j)`` of the (SPCU) view,
   materialize two independent copies of the view tableaux into one
   symbolic source instance — this is the instance ``I = rho1(T_V) U
   rho2(T_V)`` of the Theorem 3.1 proof, generalized to pairs of distinct
   disjuncts (the ``k^2`` combinations of part (a.2)).
2. Couple the two summaries through the LHS of the view CFD ``phi``:
   pattern constants are bound into both copies, wildcard positions share
   one variable.  If the coupling fails (the mapping ``rho`` is undefined)
   no violating pair can come from this branch combination.
3. Chase with the source dependencies.  An undefined chase likewise rules
   out a violation.  Otherwise the chased tableau instantiates to a
   concrete source instance satisfying ``Sigma``, and ``phi`` is violated
   on the view unless the two RHS cells were identified (and forced to the
   RHS pattern constant, when there is one).

``Sigma |=_V phi`` holds iff no branch combination yields a violation.

Finite domains are handled by enumerating instantiations of finite-domain
variables before each chase (``chase_with_instantiations``), which is the
general-setting coNP procedure of Theorems 3.2/3.3 and Corollary 3.6; with
no finite-domain attributes a single chase runs and the whole test is
polynomial.  ``assume_infinite=True`` forces the single-chase PTIME
procedure even in the presence of finite domains — deliberately incomplete,
used to demonstrate why the general setting costs more (Theorem 3.2).

In the cache stack (``docs/architecture.md``), :class:`BranchPairCache`
is the *working-state* layer below the engine's verdict/cover memo
tiers (:mod:`repro.propagation.cache`): it shares materialized, coupled
and chased tableau skeletons across the queries of one view within one
process, while the tiers above it memoize finished answers — bounded by
an LRU and optionally persisted to sqlite across processes.  Skeletons
hold process-local ``SymVar`` objects, so this layer is never
serialized; only verdicts and covers cross the persistence boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..algebra.instance import DatabaseInstance
from ..algebra.spc import SPCView
from ..algebra.spcu import SPCUView
from ..core.cfd import CFD
from ..core.chase import (
    ChaseStatus,
    SymbolicInstance,
    SymVar,
    Value,
    VarFactory,
    chase,
    chase_with_instantiations,
    premise_positions,
)
from ..core.fd import FD
from ..core.values import is_const
from ..tableau.tableau import materialize_branch
from .cache import LRUCache

_MISSING = object()

ViewLike = Union[SPCView, SPCUView]
DependencyLike = Union[CFD, FD]


class UnsupportedViewError(ValueError):
    """Raised for view languages with no decision procedure (full RA)."""


#: Normalized-Sigma memo: deps tuple -> (normal-form CFDs, frozenset).
#: Batch callers re-send the same dependency list for every query of a
#: view, and FD→CFD conversion, normalization and the per-query
#: ``frozenset(sigma)`` hashing dominated the overhead of cold sweeps.
#: Keyed by the input tuple itself (FDs/CFDs are frozen dataclasses);
#: callers treat the returned list as immutable — reusing the *same*
#: frozenset object also means its hash is computed once per Sigma, not
#: once per query.
_SIGMA_MEMO: LRUCache = LRUCache(512)


def _sigma_state(
    dependencies: Iterable[DependencyLike],
) -> tuple[list[CFD], frozenset | None]:
    deps = tuple(dependencies)
    try:
        cached = _SIGMA_MEMO.get(deps, _MISSING)
    except TypeError:  # unhashable dependency object — skip the memo
        key = None
    else:
        if cached is not _MISSING:
            return cached
        key = deps
    out: list[CFD] = []
    for dep in deps:
        if isinstance(dep, FD):
            dep = CFD.from_fd(dep)
        out.extend(dep.normalize())
    try:
        state = (out, frozenset(out))
    except TypeError:
        state = (out, None)
    if key is not None and state[1] is not None:
        _SIGMA_MEMO.put(key, state)
    return state


def _as_cfds(dependencies: Iterable[DependencyLike]) -> list[CFD]:
    return _sigma_state(dependencies)[0]


def _branches(view: ViewLike) -> list[SPCView]:
    if isinstance(view, SPCView):
        return [view]
    if isinstance(view, SPCUView):
        return list(view.branches)
    raise UnsupportedViewError(
        f"no decision procedure for views of type {type(view).__name__}; "
        "normalize to SPCView/SPCUView first (full relational algebra with "
        "difference is undecidable — Tables 1 and 2)"
    )


@dataclass
class Counterexample:
    """A witness of non-propagation.

    ``database`` satisfies the source dependencies while the view evaluated
    on it violates the view dependency; ``branch_pair`` records which
    disjuncts produced the violating tuples.
    """

    database: DatabaseInstance
    branch_pair: tuple[int, int]


class BranchPairCache:
    """Shared tableau skeletons for every propagation query on one view.

    Three layers of sharing across the queries of a batch, coarsest first:

    1. *Base pairs* — the symbolic instance holding two materialized copies
       of branches ``(i, j)`` (the ``rho1(T_V) U rho2(T_V)`` of the
       Theorem 3.1 proof).  Depends only on the view, so it is built once
       per ordered branch pair.
    2. *Coupled skeletons* — a base pair with the two summaries coupled
       through a view CFD's LHS.  The coupling reads nothing but the LHS
       pattern items, so every ``phi`` with an equal LHS shape shares one
       skeleton (cached per ``(i, j, lhs)``; ``None`` records that the
       coupling is undefined).
    3. *Chased results* — in the single-chase setting (no finite-domain
       attribute anywhere in the view, or ``assume_infinite``) the chase
       outcome depends only on the coupled skeleton and Sigma, not on the
       RHS under test, so the chased instance is shared across every RHS
       attribute (cached per ``(Sigma, i, j, lhs)``).

    Instances handed out are *skeletons*: callers must ``copy()`` before
    mutating (``chase``/``chase_with_instantiations`` already do).  With
    ``enabled=False`` nothing is stored and every layer recomputes — the
    ``--no-cache`` ablation baseline — but the counters still run.

    *capacity* bounds the **coupled** and **chased** layers with the
    same LRU policy as the engine's verdict/cover memo tiers
    (``cache_size``): those two grow with the diversity of LHS shapes
    (and Sigmas) queried through one view, which on a long-lived server
    is unbounded.  The base-pair layers stay unbounded on purpose —
    they can never exceed ``k²``/``k`` entries and the pair loop sweeps
    all of them every query, so an LRU bound below ``k²`` would evict
    each skeleton just before its next use (steady-state thrash, ~0%
    hit rate).  Evictions are counted per cache (:attr:`evictions`) and
    folded into
    :attr:`~repro.propagation.engine.EngineStats.tableau_evictions`.
    An evicted skeleton is at worst rebuilt — correctness never depends
    on residency.
    """

    def __init__(
        self,
        view: ViewLike,
        enabled: bool = True,
        capacity: int | None = None,
    ) -> None:
        self.view = view
        self.branches = _branches(view)
        self.enabled = enabled
        #: No finite-domain attribute can ever occur in a materialized
        #: branch, so `chase_with_instantiations` degenerates to a single
        #: chase and chased results are RHS-independent.
        self.single_chase = not any(
            branch.has_finite_domain_attribute() for branch in self.branches
        )
        self.chase_invocations = 0
        self.coupled_hits = 0
        self.coupled_misses = 0
        self.chased_hits = 0
        self.chased_misses = 0
        self._capacity = capacity
        self._base: LRUCache = LRUCache(None)  # <= k^2 entries, swept whole
        self._single: LRUCache = LRUCache(None)  # <= k entries
        self._coupled: LRUCache = LRUCache(capacity)
        self._chased: LRUCache = LRUCache(capacity)
        self._runners: LRUCache = LRUCache(capacity)  # sigma_key -> runner

    @property
    def evictions(self) -> int:
        """LRU evictions across the bounded tableau layers."""
        total = self._coupled.evictions + self._chased.evictions
        for runner in self._runners.values():
            total += runner.evictions
        return total

    def kernel_runner(self, sigma: list, sigma_key: frozenset):
        """The packed pair runner for *sigma* (built once per Sigma).

        The runner replaces layers 2-3 for the single-chase fast path: it
        owns the packed templates plus the per-premise-signature outcome
        cache, and ticks the same coupled/chased counters.  Its outcome
        caches share the ``capacity`` bound of the layers it replaces.
        """
        runner = self._runners.get(sigma_key, _MISSING)
        if runner is _MISSING:
            from ..kernel.chase import PackedPairRunner

            runner = PackedPairRunner(sigma, self, capacity=self._capacity)
            self._runners.put(sigma_key, runner)
        return runner

    # ------------------------------------------------------------------
    # Layer 1: materialized branch pairs.
    # ------------------------------------------------------------------

    def base_pair(self, i: int, j: int):
        """Two materialized copies of branches ``(i, j)`` in one instance.

        Returns ``(instance, cells1, cells2)`` or ``None`` when either
        branch has an unsatisfiable selection.
        """
        key = (i, j)
        if self.enabled:
            prepared = self._base.get(key, _MISSING)
            if prepared is not _MISSING:
                return prepared
        instance = SymbolicInstance()
        factory = VarFactory()
        cells1 = materialize_branch(self.branches[i], instance, factory)
        cells2 = (
            materialize_branch(self.branches[j], instance, factory)
            if cells1 is not None
            else None
        )
        prepared = None if cells1 is None or cells2 is None else (instance, cells1, cells2)
        if self.enabled:
            self._base.put(key, prepared)
        return prepared

    def base_single(self, i: int):
        """One materialized copy of branch ``i`` (equality-form queries)."""
        if self.enabled:
            prepared = self._single.get(i, _MISSING)
            if prepared is not _MISSING:
                return prepared
        instance = SymbolicInstance()
        cells = materialize_branch(self.branches[i], instance, VarFactory())
        prepared = None if cells is None else (instance, cells)
        if self.enabled:
            self._single.put(i, prepared)
        return prepared

    # ------------------------------------------------------------------
    # Layer 2: coupled skeletons, shared across equal LHS shapes.
    # ------------------------------------------------------------------

    def coupled(self, i: int, j: int, phi: CFD):
        """The base pair coupled through ``phi``'s LHS; ``None`` if undefined."""
        key = (i, j, phi.lhs)
        if self.enabled:
            prepared = self._coupled.get(key, _MISSING)
            if prepared is not _MISSING:
                self.coupled_hits += 1
                return prepared
        self.coupled_misses += 1
        base = self.base_pair(i, j)
        if base is None:
            prepared = None
        else:
            instance, cells1, cells2 = base
            coupled = instance.copy()
            if _couple_premise(coupled, cells1, cells2, phi):
                prepared = (coupled, cells1, cells2)
            else:
                prepared = None
        if self.enabled:
            self._coupled.put(key, prepared)
        return prepared

    # ------------------------------------------------------------------
    # Layer 3: chased results, shared across RHS attributes.
    # ------------------------------------------------------------------

    def can_share_chase(self, assume_infinite: bool, max_instantiations) -> bool:
        return (self.single_chase or assume_infinite) and max_instantiations is None

    def chased(
        self,
        sigma: list[CFD],
        sigma_key: frozenset,
        i: int,
        j: int | None,
        phi: CFD,
        instance: SymbolicInstance,
    ):
        """The chase of a coupled skeleton under Sigma (single-chase setting).

        ``j=None`` keys the one-copy (equality-form) variant; otherwise the
        key is the pair plus ``phi``'s LHS shape, which the coupled
        skeleton is a function of.  ``sigma_key`` is ``frozenset(sigma)``,
        precomputed once per query.
        """
        key = (sigma_key, i, j, None if j is None else phi.lhs)
        if self.enabled:
            result = self._chased.get(key, _MISSING)
            if result is not _MISSING:
                self.chased_hits += 1
                return result
        self.chased_misses += 1
        self.chase_invocations += 1
        result = chase(instance.copy(), sigma)
        if self.enabled:
            self._chased.put(key, result)
        return result


def propagates(
    sigma: Iterable[DependencyLike],
    view: ViewLike,
    phi: DependencyLike,
    max_instantiations: int | None = None,
    assume_infinite: bool = False,
    cache: BranchPairCache | None = None,
    pairs: Iterable[tuple[int, int]] | None = None,
    kernel: str | None = None,
) -> bool:
    """Decide ``Sigma |=_V phi``.

    ``max_instantiations`` caps the finite-domain enumeration; a capped run
    is sound for *non*-propagation but may report propagation optimistically
    (the paper's heuristic escape for the coNP cases).
    """
    return (
        find_counterexample(
            sigma,
            view,
            phi,
            max_instantiations=max_instantiations,
            assume_infinite=assume_infinite,
            cache=cache,
            pairs=pairs,
            kernel=kernel,
        )
        is None
    )


def find_counterexample(
    sigma: Iterable[DependencyLike],
    view: ViewLike,
    phi: DependencyLike,
    max_instantiations: int | None = None,
    assume_infinite: bool = False,
    cache: BranchPairCache | None = None,
    pairs: Iterable[tuple[int, int]] | None = None,
    kernel: str | None = None,
) -> Counterexample | None:
    """Search for a source instance witnessing ``Sigma |/=_V phi``.

    Returns ``None`` when *phi* is propagated.  The witness database is
    concrete and can be validated by evaluation — the integration tests
    do exactly that.

    *cache* shares materialized/coupled/chased tableaux across queries on
    the same view (see :class:`BranchPairCache`); it must have been built
    for *view*.

    *pairs* restricts the search to the given ordered branch pairs (the
    sharded-chase scheduler's knob — see
    :mod:`repro.propagation.engine.scheduler`): equality-form conjuncts
    run on the branches of the diagonal pairs present.  ``None`` keeps
    the full ``k²`` iteration.  A pair-restricted ``None`` result means
    only "no violation *within these pairs*".

    *kernel* — ``"bitset"`` routes eligible pair sweeps through the
    packed runner of :mod:`repro.kernel.chase` (cached single-chase
    setting only; identical answers, differential-tested).  The default
    ``None`` keeps the baseline everywhere, so library callers and the
    fuzz oracle are untouched by the engine's kernel selection.
    """
    sigma_cfds, sigma_key = _sigma_state(sigma)
    if isinstance(phi, FD):
        phi = CFD.from_fd(phi)
    if cache is not None and cache.view is not view:
        raise ValueError("cache was built for a different view")
    branches = _branches(view)
    projection = set(branches[0].projection)
    pair_list = None if pairs is None else list(pairs)

    for normal_phi in phi.normalize():
        if normal_phi.is_trivial():
            continue
        missing = normal_phi.attributes - projection
        if missing:
            raise KeyError(
                f"view dependency references attributes {sorted(missing)} "
                "that the view does not project"
            )
        if normal_phi.is_equality:
            witness = _equality_counterexample(
                sigma_cfds,
                branches,
                normal_phi,
                max_instantiations,
                assume_infinite,
                cache,
                pair_list,
                sigma_key,
            )
        else:
            witness = _pair_counterexample(
                sigma_cfds,
                branches,
                normal_phi,
                max_instantiations,
                assume_infinite,
                cache,
                pair_list,
                kernel,
                sigma_key,
            )
        if witness is not None:
            return witness
    return None


def _chase_runs(
    instance: SymbolicInstance,
    sigma: list[CFD],
    max_instantiations: int | None,
    assume_infinite: bool,
    extra_values: tuple[Value, ...],
    cache: BranchPairCache | None,
):
    def count_chase() -> None:
        if cache is not None:
            cache.chase_invocations += 1

    if assume_infinite:
        count_chase()
        yield chase(instance.copy(), sigma)
        return
    yield from chase_with_instantiations(
        instance,
        sigma,
        limit=max_instantiations,
        positions=premise_positions(sigma),
        extra_values=extra_values,
        on_chase=count_chase,
    )


def _pair_counterexample(
    sigma: list[CFD],
    branches: list[SPCView],
    phi: CFD,
    max_instantiations: int | None,
    assume_infinite: bool,
    cache: BranchPairCache | None,
    pairs: list[tuple[int, int]] | None = None,
    kernel: str | None = None,
    sigma_key: frozenset | None = None,
) -> Counterexample | None:
    rhs_attr = phi.rhs_attr
    rhs_entry = phi.rhs_entry
    share_chase = cache is not None and cache.can_share_chase(
        assume_infinite, max_instantiations
    )
    if share_chase and sigma_key is None:
        sigma_key = frozenset(sigma)
    if pairs is None:
        pairs = [
            (i, j) for i in range(len(branches)) for j in range(len(branches))
        ]

    if kernel == "bitset" and share_chase and cache.enabled:
        runner = cache.kernel_runner(sigma, sigma_key)
        if runner.usable:
            hit = runner.find_violation(phi, pairs)
            if runner.usable:
                if hit is None:
                    return None
                witness = _pair_witness(sigma, branches, phi, cache, sigma_key, hit)
                if witness is not None:
                    return witness
                # A disagreement between the packed verdict and the
                # baseline witness would land here; fall through to the
                # full baseline sweep so the answer is always baseline.

    for i, j in pairs:
        left, right = branches[i], branches[j]
        if cache is not None:
            prepared = cache.coupled(i, j, phi)
            if prepared is None:
                continue
            instance, cells1, cells2 = prepared
        else:
            instance = SymbolicInstance()
            factory = VarFactory()
            cells1 = materialize_branch(left, instance, factory)
            if cells1 is None:
                continue
            cells2 = materialize_branch(right, instance, factory)
            if cells2 is None:
                continue
            if not _couple_premise(instance, cells1, cells2, phi):
                continue
        y1 = cells1[rhs_attr]
        y2 = cells2[rhs_attr]
        if share_chase:
            runs = [cache.chased(sigma, sigma_key, i, j, phi, instance)]
        else:
            runs = _chase_runs(
                instance, sigma, max_instantiations, assume_infinite, (y1, y2), cache
            )
        for result in runs:
            if result.status is ChaseStatus.UNDEFINED:
                continue
            r1 = result.instance.resolve(y1)
            r2 = result.instance.resolve(y2)
            violated = r1 != r2
            if not violated and is_const(rhs_entry):
                violated = isinstance(r1, SymVar) or r1 != rhs_entry.value
            if violated:
                database = _to_database(result.instance, branches[0])
                return Counterexample(database, (i, j))
    return None


def _pair_witness(
    sigma: list[CFD],
    branches: list[SPCView],
    phi: CFD,
    cache: BranchPairCache,
    sigma_key: frozenset,
    pair: tuple[int, int],
) -> Counterexample | None:
    """Rebuild the baseline witness for the kernel's violating pair.

    The packed runner only decides *which* pair violates; the concrete
    counterexample database is produced by the exact baseline machinery
    (coupled skeleton + shared chase + instantiation) for that pair, so
    kernel and baseline answers are byte-identical down to the witness.
    """
    i, j = pair
    prepared = cache.coupled(i, j, phi)
    if prepared is None:
        return None
    instance, cells1, cells2 = prepared
    result = cache.chased(sigma, sigma_key, i, j, phi, instance)
    if result.status is ChaseStatus.UNDEFINED:
        return None
    r1 = result.instance.resolve(cells1[phi.rhs_attr])
    r2 = result.instance.resolve(cells2[phi.rhs_attr])
    violated = r1 != r2
    if not violated and is_const(phi.rhs_entry):
        violated = isinstance(r1, SymVar) or r1 != phi.rhs_entry.value
    if not violated:
        return None
    return Counterexample(_to_database(result.instance, branches[0]), (i, j))


def _couple_premise(
    instance: SymbolicInstance,
    cells1: dict[str, Value],
    cells2: dict[str, Value],
    phi: CFD,
) -> bool:
    """Bind the two summaries to the LHS pattern of *phi*.

    Returns ``False`` when the mapping is undefined — no pair of view
    tuples from these branches can match the premise.
    """
    for attr, entry in phi.lhs:
        if is_const(entry):
            if not instance.equate(cells1[attr], entry.value):
                return False
            if not instance.equate(cells2[attr], entry.value):
                return False
        else:
            if not instance.equate(cells1[attr], cells2[attr]):
                return False
    return True


def _equality_counterexample(
    sigma: list[CFD],
    branches: list[SPCView],
    phi: CFD,
    max_instantiations: int | None,
    assume_infinite: bool,
    cache: BranchPairCache | None,
    pairs: list[tuple[int, int]] | None = None,
    sigma_key: frozenset | None = None,
) -> Counterexample | None:
    a = phi.lhs[0][0]
    b = phi.rhs[0][0]
    share_chase = cache is not None and cache.can_share_chase(
        assume_infinite, max_instantiations
    )
    if share_chase and sigma_key is None:
        sigma_key = frozenset(sigma)
    if pairs is None:
        indexes = list(range(len(branches)))
    else:
        # Equality-form conjuncts need one copy per branch; a shard owns
        # branch i iff it owns the diagonal pair (i, i), so the shards
        # jointly cover every branch exactly once.
        indexes = sorted({i for i, j in pairs if i == j})
    for i in indexes:
        branch = branches[i]
        if cache is not None:
            prepared = cache.base_single(i)
            if prepared is None:
                continue
            instance, cells = prepared
        else:
            instance = SymbolicInstance()
            factory = VarFactory()
            cells = materialize_branch(branch, instance, factory)
            if cells is None:
                continue
        if share_chase:
            runs = [cache.chased(sigma, sigma_key, i, None, phi, instance)]
        else:
            runs = _chase_runs(
                instance,
                sigma,
                max_instantiations,
                assume_infinite,
                (cells[a], cells[b]),
                cache,
            )
        for result in runs:
            if result.status is ChaseStatus.UNDEFINED:
                continue
            if result.instance.resolve(cells[a]) != result.instance.resolve(cells[b]):
                return Counterexample(_to_database(result.instance, branch), (i, i))
    return None


def _to_database(instance: SymbolicInstance, any_branch: SPCView) -> DatabaseInstance:
    """Instantiate a chased symbolic instance into a concrete database."""
    concrete = instance.instantiate().concrete()
    schema = any_branch.source_schema
    rows = {rel: concrete.get(rel, []) for rel in concrete}
    return DatabaseInstance(schema, rows)
