"""Propagation covers in the general setting (Section 7 future work).

``PropCFD_SPC`` assumes the infinite-domain setting.  With finite-domain
attributes two things change:

1. **Soundness is preserved for free.**  A CFD propagated when every
   domain is treated as infinite is propagated a fortiori when some
   domains shrink (there are only fewer source instances to satisfy).
   So the infinite-domain cover is always a sound starting point.
2. **Completeness is lost**: finite domains admit *case analysis*.  With
   ``dom(A) = {v1, ..., vk}``, a view CFD holds iff it holds on each
   slice ``A = vi`` — e.g. two source CFDs covering both Boolean values
   of ``A`` jointly force a constant the infinite-domain algorithm can
   never derive (Theorem 3.3's coNP-hardness lives exactly here).

:func:`prop_cfd_spc_general` implements cover strengthening by bounded
case analysis:

- run ``PropCFD_SPC`` for the base cover;
- for every finite-domain attribute ``A`` of ``E_s`` with domain size at
  most ``max_domain_size``, compute per-value covers of the view with
  ``A = v`` added to the selection;
- a candidate derivable in *every* slice is a view CFD with ``A``
  case-split away: candidates are harvested from the first slice's cover
  (with ``A``-guards stripped) and kept when implied by each other
  slice's cover;
- every harvested candidate is verified with the exact general-setting
  decision procedure before being admitted (the verification also
  catches interactions between several finite-domain attributes that a
  single-attribute split misses).

The result is sound by construction; completeness is relative to
single-attribute case splits, the natural first step the paper's future
work calls for.
"""

from __future__ import annotations

from typing import Iterable

from ..algebra.ops import ConstEq
from ..algebra.spc import SPCView
from ..algebra.spcu import SPCUView
from ..core.cfd import CFD
from ..core.implication import implies
from ..core.mincover import min_cover
from ..core.values import is_const
from .check import DependencyLike, propagates
from .cover import prop_cfd_spc


def _sliced(view: SPCView, attribute: str, value: object) -> SPCView:
    """The view with ``attribute = value`` added to the selection."""
    return SPCView(
        view.name,
        view.source_schema,
        view.atoms,
        list(view.selection) + [ConstEq(attribute, value)],
        view.projection,
        view.constants,
        view.constant_domains,
        unsatisfiable=view.unsatisfiable,
    )


def _strip_guard(phi: CFD, attribute: str) -> CFD | None:
    """Remove an ``attribute`` guard from *phi*'s LHS (case-split away)."""
    if phi.is_equality or attribute not in phi.lhs_attrs:
        return phi
    stripped = phi.drop_lhs_attribute(attribute)
    if stripped.is_trivial():
        return None
    if not stripped.lhs and is_const(stripped.rhs_entry):
        # Canonicalize the empty-LHS global constant to the paper's
        # (A -> A, (_ || a)) shape.
        return CFD.constant(
            stripped.relation, stripped.rhs_attr, stripped.rhs_entry.value
        )
    return stripped


def prop_cfd_spc_general(
    sigma: Iterable[DependencyLike],
    view: SPCView,
    max_domain_size: int = 4,
    partition_size: int | None = 40,
    max_instantiations: int | None = None,
) -> list[CFD]:
    """A general-setting propagation cover via bounded case analysis.

    ``max_domain_size`` bounds which finite domains are split (the cost is
    one ``PropCFD_SPC`` run per value per attribute).  The returned CFDs
    all pass the exact general-setting decision procedure.
    """
    base = prop_cfd_spc(sigma, view, partition_size=partition_size)
    spcu = SPCUView.from_spc(view)

    extra: list[CFD] = []
    seen: set[CFD] = set(base)
    domains = view.es_attributes()
    for attribute in sorted(domains):
        domain = domains[attribute]
        if not domain.is_finite or domain.size > max_domain_size:
            continue
        values = list(domain)
        slice_covers = [
            prop_cfd_spc(
                sigma,
                _sliced(view, attribute, value),
                partition_size=partition_size,
            )
            for value in values
        ]
        # Harvest candidates from the first slice, case-split the
        # attribute away, and require derivability in every other slice.
        for phi in slice_covers[0]:
            candidate = _strip_guard(phi, attribute)
            if candidate is None or candidate in seen:
                continue
            if any(
                is_const(entry) and name == attribute
                for name, entry in candidate.lhs
            ):
                continue
            if not all(
                implies(cover, candidate) for cover in slice_covers[1:]
            ):
                continue
            if implies(base + extra, candidate):
                continue  # already known
            if propagates(
                sigma,
                spcu,
                candidate,
                max_instantiations=max_instantiations,
            ):
                seen.add(candidate)
                extra.append(candidate)

    if not extra:
        return base
    return min_cover(base + extra)
