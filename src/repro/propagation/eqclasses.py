"""``ComputeEQ`` and ``EQ2CFD`` (Figure 2 line 2 / Figure 4).

The selection condition ``F`` of an SPC view and the domain-constraint
CFDs of the source set jointly partition the view attributes into
equivalence classes ``EQ``: ``A, B`` share a class iff ``A = B`` is forced
on every tuple of ``Es``, and a class carries a constant *key* when some
``A = 'a'`` is forced.  Two distinct keys in one class mean the view is
always empty — the ``⊥`` outcome that triggers Lemma 4.5.

``ComputeEQ`` here runs a fixpoint:

1. union the classes of every ``A = B`` selection atom,
2. seed keys from ``A = 'a'`` selection atoms and constant attributes of
   ``Rc``,
3. repeatedly apply view-space CFDs that *fire globally* — every LHS
   pattern entry is the wildcard or equals the key of its attribute's
   class — whose RHS entry is a constant (they pin their RHS attribute,
   Example 3.1) or which are equality CFDs (they merge classes).

``EQ2CFD`` converts the result back into CFDs on the view schema: keyed
classes yield ``(A -> A, (_ || key))`` per member, unkeyed multi-member
classes yield ``(A -> B, (x || x))`` per attribute pair.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..algebra.ops import AttrEq
from ..algebra.spc import SPCView
from ..core.cfd import CFD
from ..core.values import is_const, is_wildcard


class BottomEQ:
    """The ``⊥`` outcome: the selection and CFDs force two distinct
    constants onto one attribute class, so the view is always empty."""

    def __init__(self, attribute: str, values: tuple[Any, Any]) -> None:
        self.attribute = attribute
        self.values = values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"⊥({self.attribute} = {self.values[0]!r} and {self.values[1]!r})"


class EquivalenceClasses:
    """A union-find over view attributes with per-class constant keys."""

    def __init__(self, attributes: Iterable[str]) -> None:
        self._parent: dict[str, str] = {a: a for a in attributes}
        self._key: dict[str, Any] = {}
        self._has_key: set[str] = set()

    # -- union-find ----------------------------------------------------

    def find(self, attribute: str) -> str:
        root = attribute
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[attribute] != root:
            self._parent[attribute], attribute = root, self._parent[attribute]
        return root

    def union(self, a: str, b: str) -> BottomEQ | None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return None
        ka = ra in self._has_key
        kb = rb in self._has_key
        if ka and kb and self._key[ra] != self._key[rb]:
            return BottomEQ(a, (self._key[ra], self._key[rb]))
        self._parent[rb] = ra
        if kb and not ka:
            self._key[ra] = self._key[rb]
            self._has_key.add(ra)
        return None

    def set_key(self, attribute: str, value: Any) -> BottomEQ | None:
        root = self.find(attribute)
        if root in self._has_key:
            if self._key[root] != value:
                return BottomEQ(attribute, (self._key[root], value))
            return None
        self._key[root] = value
        self._has_key.add(root)
        return None

    def key(self, attribute: str) -> Any | None:
        """The class key (constant forced on the class) or ``None``."""
        root = self.find(attribute)
        return self._key.get(root)

    def has_key(self, attribute: str) -> bool:
        return self.find(attribute) in self._has_key

    def same(self, a: str, b: str) -> bool:
        return self.find(a) == self.find(b)

    def classes(self) -> list[list[str]]:
        buckets: dict[str, list[str]] = {}
        for attribute in self._parent:
            buckets.setdefault(self.find(attribute), []).append(attribute)
        return [sorted(members) for _, members in sorted(buckets.items())]

    def representative(self, attribute: str, prefer: Iterable[str]) -> str:
        """The class member used to stand for the class (Figure 2 line 8):
        a member of *prefer* (the projection list) when one exists."""
        preferred = set(prefer)
        members = [a for a in self._parent if self.same(a, attribute)]
        in_y = sorted(m for m in members if m in preferred)
        if in_y:
            return in_y[0]
        return sorted(members)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for members in self.classes():
            key = self.key(members[0])
            suffix = f"={key!r}" if self.has_key(members[0]) else ""
            parts.append("{" + ",".join(members) + "}" + suffix)
        return "EQ(" + " ".join(parts) + ")"


def compute_eq(
    view: SPCView, sigma_v: Iterable[CFD], kernel: str | None = None
) -> EquivalenceClasses | BottomEQ:
    """``ComputeEQ``: classes and keys for the view, or ``⊥``.

    *sigma_v* must already live in view attribute space (the output of
    ``view.rename_source_cfds``).  *kernel* selects the union-find
    representation: ``"bitset"`` runs on the int-array
    :class:`~repro.kernel.eqpack.PackedEquivalenceClasses` (identical
    observable behavior, differential-tested), anything else on the
    dict-based baseline.
    """
    if kernel == "bitset":
        from ..kernel.eqpack import PackedEquivalenceClasses

        eq = PackedEquivalenceClasses(view.extended_attributes())
    else:
        eq = EquivalenceClasses(view.extended_attributes())

    if view.unsatisfiable:
        some_attr = next(iter(view.extended_attributes()), "A")
        return BottomEQ(some_attr, ("⊥0", "⊥1"))

    for atom in view.selection:
        outcome = (
            eq.union(atom.left, atom.right)
            if isinstance(atom, AttrEq)
            else eq.set_key(atom.attr, atom.value)
        )
        if outcome is not None:
            return outcome
    for attr, value in view.constants.items():
        outcome = eq.set_key(attr, value)
        if outcome is not None:
            return outcome

    normalized: list[CFD] = []
    for dep in sigma_v:
        normalized.extend(phi.simplified() for phi in dep.normalize())

    changed = True
    while changed:
        changed = False
        for phi in normalized:
            if phi.is_equality:
                a = phi.lhs[0][0]
                b = phi.rhs[0][0]
                if not eq.same(a, b):
                    outcome = eq.union(a, b)
                    if outcome is not None:
                        return outcome
                    changed = True
                continue
            if not _fires_globally(phi, eq):
                continue
            entry = phi.rhs_entry
            if is_const(entry):
                attr = phi.rhs_attr
                if eq.key(attr) != entry.value or not eq.has_key(attr):
                    outcome = eq.set_key(attr, entry.value)
                    if outcome is not None:
                        return outcome
                    changed = True
    return eq


def _fires_globally(phi: CFD, eq: EquivalenceClasses) -> bool:
    """Whether *phi*'s premise is matched by every tuple of ``Es``.

    True when each LHS entry is the wildcard, or a constant equal to the
    key already forced on its attribute's class.
    """
    for attr, entry in phi.lhs:
        if is_wildcard(entry):
            continue
        if not eq.has_key(attr):
            return False
        assert is_const(entry)
        if eq.key(attr) != entry.value:
            return False
    return True


def eq2cfd(
    eq: EquivalenceClasses, view: SPCView
) -> list[CFD]:
    """``EQ2CFD`` (Figure 4): domain constraints of ``EQ`` as view CFDs.

    Classes are first restricted to the projection list ``Y`` (Figure 2
    line 10): attributes the view does not expose contribute no view CFDs.
    """
    projected = set(view.projection)
    out: list[CFD] = []
    for members in eq.classes():
        visible = [m for m in members if m in projected]
        if not visible:
            continue
        key = eq.key(members[0])
        if eq.has_key(members[0]):
            for attr in visible:
                out.append(CFD.constant(view.name, attr, key))
        else:
            for i, a in enumerate(visible):
                for b in visible[i + 1 :]:
                    out.append(CFD.equality(view.name, a, b))
    return out
