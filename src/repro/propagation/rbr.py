"""Reduction By Resolution for CFDs (Figure 3, extending Gottlob PODS'87).

``RBR`` eliminates the non-projected attributes ``attr(Es) - Y`` one at a
time.  Dropping attribute ``A`` *shortcuts* every inference that passes
through ``A``: each pair

    phi1 = (W -> A, t1)     and     phi2 = (A Z -> B, t2)

with ``t1[A] <= t2[A]`` (the RHS pattern of *phi1* at least as specific as
*phi2*'s LHS pattern — constants block the transitivity otherwise) and
compatible patterns on ``W ∩ Z`` yields the *A-resolvent*

    (W Z -> B, (t1[W] (+) t2[Z] || t2[B]))

where ``(+)`` takes the more specific entry per shared attribute.  After
collecting all nontrivial A-resolvents, every CFD mentioning ``A`` is
discarded (``Drop``).  Proposition 4.4: ``Drop(Sigma, A)+ = Sigma+[U-{A}]``,
so iterating over all dropped attributes leaves a propagation cover of the
projection.

Faithfulness notes:

- Resolvents are formed only when they no longer mention ``A`` (``A`` not
  in ``W`` and ``B != A``); CFDs of the shape ``(X A -> A, (tx, _ || a))``
  are first rewritten to ``(X -> A, (tx || a))`` (see ``CFD.simplified``),
  which is the paper's point that such CFDs are meaningful and must not be
  thrown away as trivial.
- The intermediate ``MinCover`` call of Section 4.3 is implemented as the
  partitioned variant the authors describe (fixed-size blocks, so the
  worst-case complexity is unchanged); pass ``partition_size=None`` to
  disable it — the A2 ablation benchmark compares both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.cfd import CFD
from ..core.mincover import partitioned_min_cover
from ..core.values import leq, meet


@dataclass
class RBRStats:
    """Counters for RBR work, threaded in by the batch engine.

    ``resolvent_pairs`` counts producer x consumer combinations examined,
    ``resolvents_kept`` the nontrivial novel resolvents, ``drops`` the
    attributes eliminated and ``mincover_passes`` the intermediate
    partitioned-MinCover runs — the quantities the ablation benchmarks
    compare across engine configurations.
    """

    resolvent_pairs: int = 0
    resolvents_kept: int = 0
    drops: int = 0
    mincover_passes: int = 0


def a_resolvent(phi1: CFD, phi2: CFD, attribute: str) -> CFD | None:
    """The A-resolvent of *phi1* and *phi2*, or ``None`` when blocked.

    Requires *phi1* to derive *attribute* (RHS) and *phi2* to consume it
    (LHS).  ``None`` when the pattern order or a meet fails, or when the
    resolvent would still mention *attribute*.
    """
    if phi1.is_equality or phi2.is_equality:
        return None
    if phi1.rhs_attr != attribute or attribute in phi1.lhs_attrs:
        return None
    if attribute not in phi2.lhs_attrs or phi2.rhs_attr == attribute:
        return None
    if not leq(phi1.rhs_entry, phi2.lhs_entry(attribute)):
        return None

    merged = dict(phi1.lhs)
    for name, entry in phi2.lhs:
        if name == attribute:
            continue
        if name in merged:
            joined = meet(merged[name], entry)
            if joined is None:
                return None
            merged[name] = joined
        else:
            merged[name] = entry
    return CFD(
        phi2.relation, merged, {phi2.rhs_attr: phi2.rhs_entry}
    ).simplified()


def resolvents(
    gamma: Sequence[CFD], attribute: str, stats: RBRStats | None = None
) -> list[CFD]:
    """``Res(Gamma, A)``: all nontrivial A-resolvents over *gamma*."""
    producers = [
        phi
        for phi in gamma
        if not phi.is_equality
        and phi.rhs_attr == attribute
        and attribute not in phi.lhs_attrs
    ]
    consumers = [
        phi
        for phi in gamma
        if not phi.is_equality and attribute in phi.lhs_attrs
    ]
    found: list[CFD] = []
    seen: set[CFD] = set()
    if stats is not None:
        stats.resolvent_pairs += len(producers) * len(consumers)
    for phi1 in producers:
        for phi2 in consumers:
            resolvent = a_resolvent(phi1, phi2, attribute)
            if resolvent is None or resolvent.is_trivial():
                continue
            if resolvent not in seen:
                seen.add(resolvent)
                found.append(resolvent)
    if stats is not None:
        stats.resolvents_kept += len(found)
    return found


def drop(
    gamma: Sequence[CFD], attribute: str, stats: RBRStats | None = None
) -> list[CFD]:
    """``Drop(Gamma, A) = Res(Gamma, A) ∪ Gamma[U - {A}]`` (one attribute)."""
    kept = [phi for phi in gamma if attribute not in phi.attributes]
    if stats is not None:
        stats.drops += 1
    return kept + resolvents(gamma, attribute, stats=stats)


def rbr(
    sigma: Iterable[CFD],
    drop_attributes: Iterable[str],
    partition_size: int | None = 40,
    stats: RBRStats | None = None,
) -> list[CFD]:
    """``RBR(Sigma, U - Y)``: drop every attribute outside the projection.

    *partition_size* enables the intermediate partitioned MinCover pass
    after each drop (Section 4.3's optimization); ``None`` disables it.
    Attributes are dropped in sorted order for determinism.  *stats*
    accumulates work counters (used by the batch engine's ablations).
    """
    gamma: list[CFD] = []
    seen: set[CFD] = set()
    for dep in sigma:
        for phi in dep.normalize():
            phi = phi.simplified()
            if not phi.is_trivial() and phi not in seen:
                seen.add(phi)
                gamma.append(phi)

    # The intermediate MinCover exists to curb *growth* from resolvents;
    # most drops shrink Gamma (every CFD touching the attribute leaves),
    # and re-minimizing an already shrinking set is pure overhead.  Run
    # it only when Gamma grew beyond the last minimized size.
    last_size = len(gamma)
    for attribute in sorted(set(drop_attributes)):
        gamma = drop(gamma, attribute, stats=stats)
        if (
            partition_size is not None
            and len(gamma) > partition_size
            and len(gamma) > 1.2 * last_size
        ):
            gamma = partitioned_min_cover(gamma, partition_size)
            if stats is not None:
                stats.mincover_passes += 1
            last_size = len(gamma)
        else:
            last_size = min(last_size, len(gamma))
    return gamma
