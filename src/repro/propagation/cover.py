"""``PropCFD_SPC``: minimal propagation covers via SPC views (Figure 2).

The paper's main algorithmic contribution: given source CFDs ``Sigma`` and
an SPC view ``V`` (infinite-domain setting), compute a *minimal cover* of
``CFDp(Sigma, V)`` — the set of all view CFDs propagated from ``Sigma``
via ``V``.  The pipeline, line by line against Figure 2:

1.  ``Sigma := MinCover(Sigma)`` — simplify the input (line 1).
2.  ``EQ := ComputeEQ(Es, Sigma)`` — selection handling (line 2); on ``⊥``
    return the conflicting CFD pair of Lemma 4.5: the view is always
    empty, so every view CFD is propagated and the pair is a cover
    (lines 3-4).
3.  ``Sigma_V := U rho_j(Sigma)`` — Cartesian-product handling: source
    CFDs renamed into view attribute space, one copy per relation atom
    (lines 5-6).
4.  Apply the domain constraints of ``EQ`` (lines 7-10): substitute a
    representative (preferring projected attributes) for every class
    member, and eliminate *keyed* attributes from CFDs — an attribute
    with a constant key is constant on every tuple of ``Es``, so
    compatible LHS occurrences drop out, incompatible ones kill the CFD,
    and CFDs concluding a keyed attribute are subsumed by the key.
5.  ``Sigma_c := RBR(Sigma_V, attr(Es) - Y)`` — projection handling
    (line 11).
6.  ``Sigma_d := EQ2CFD(EQ)`` — the domain constraints as view CFDs
    (line 12).
7.  Return ``MinCover(Sigma_c ∪ Sigma_d)`` (line 13).

A known incompleteness corner (shared with the paper's presentation): a
CFD whose conclusion conflicts with a key only on a *proper* sub-pattern
of the view asserts the emptiness of that sub-pattern; such denial
information is dropped rather than translated into conflicting view CFDs.
The global case — the whole view empty — is fully handled via ``⊥``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Union

from ..algebra.spc import SPCView
from ..core.cfd import CFD
from ..core.fd import FD
from ..core.mincover import min_cover
from ..core.values import is_const, is_wildcard
from .eqclasses import BottomEQ, EquivalenceClasses, compute_eq, eq2cfd
from .rbr import RBRStats, rbr

DependencyLike = Union[CFD, FD]


@dataclass
class CoverReport:
    """Diagnostics from a ``PropCFD_SPC`` run (used by the benchmarks).

    The ``seconds_*`` fields break the runtime into the Figure 2 phases:
    input MinCover (line 1), EQ computation and application (lines 2-10),
    RBR (line 11) and the final MinCover (line 13).  The benchmarks report
    ``seconds_rbr + seconds_final`` as the *view-dependent* cost — the
    input MinCover depends only on ``|Sigma|`` and would otherwise mask
    the |Y|-sensitivity the paper's Figure 6(a) shows.
    """

    cover: list[CFD]
    inconsistent: bool = False
    sigma_v_size: int = 0
    after_eq_size: int = 0
    after_rbr_size: int = 0
    dropped_attributes: int = 0
    seconds_input_mincover: float = 0.0
    seconds_eq: float = 0.0
    seconds_rbr: float = 0.0
    seconds_final_mincover: float = 0.0

    @property
    def seconds_view_dependent(self) -> float:
        return self.seconds_eq + self.seconds_rbr + self.seconds_final_mincover


def prop_cfd_spc(
    sigma: Iterable[DependencyLike],
    view: SPCView,
    partition_size: int | None = 40,
    final_min_cover: bool = True,
    minimize_input: bool = True,
    sigma_scope: frozenset[str] | None = None,
) -> list[CFD]:
    """Compute a minimal propagation cover of *sigma* via *view*.

    *sigma* may mix FDs and CFDs (FDs are all-wildcard CFDs).  The result
    is a list of normal-form view CFDs on ``view.name``.  The three keyword
    arguments switch off individual optimizations for the ablation
    benchmarks; defaults follow the paper.
    """
    return prop_cfd_spc_report(
        sigma,
        view,
        partition_size=partition_size,
        final_min_cover=final_min_cover,
        minimize_input=minimize_input,
        sigma_scope=sigma_scope,
    ).cover


def prop_cfd_spc_report(
    sigma: Iterable[DependencyLike],
    view: SPCView,
    partition_size: int | None = 40,
    final_min_cover: bool = True,
    minimize_input: bool = True,
    rbr_stats: RBRStats | None = None,
    kernel: str | None = None,
    sigma_scope: frozenset[str] | None = None,
) -> CoverReport:
    """As :func:`prop_cfd_spc`, returning intermediate-size diagnostics.

    ``minimize_input=False`` also serves callers (the batch engine) that
    pre-minimize Sigma once and share it across many views; *rbr_stats*
    accumulates RBR work counters across calls.  *kernel* selects the
    ``ComputeEQ`` union-find representation (``"bitset"`` → the packed
    int-array variant; answers are identical either way).

    *sigma_scope* restricts Sigma to CFDs on the named relations before
    anything runs.  The cover is invariant under scoping to (a superset
    of) the view's atom sources: ``MinCover`` minimizes per relation and
    ``rename_source_cfds`` renames per atom, so CFDs on relations the
    view never reads contribute nothing — which is exactly the
    per-branch provenance the engine's delta path keys its branch-cover
    memo on.  Passing the scope makes the computation itself honor it,
    instead of leaving the invariant implicit.
    """
    timer = time.perf_counter

    sigma_cfds: list[CFD] = []
    for dep in sigma:
        if isinstance(dep, FD):
            dep = CFD.from_fd(dep)
        sigma_cfds.extend(dep.normalize())
    if sigma_scope is not None:
        sigma_cfds = [phi for phi in sigma_cfds if phi.relation in sigma_scope]

    start = timer()
    if minimize_input:
        sigma_cfds = min_cover(sigma_cfds)  # line 1
    t_input = timer() - start

    sigma_v = view.rename_source_cfds(sigma_cfds)  # lines 5-6

    start = timer()
    eq = compute_eq(view, sigma_v, kernel=kernel)  # line 2
    if isinstance(eq, BottomEQ):  # lines 3-4
        return CoverReport(
            cover=_inconsistent_pair(view),
            inconsistent=True,
            seconds_input_mincover=t_input,
        )

    report = CoverReport(
        cover=[],
        sigma_v_size=len(sigma_v),
        seconds_input_mincover=t_input,
    )

    sigma_v = _apply_domain_constraints(sigma_v, eq, view)  # lines 7-10
    report.after_eq_size = len(sigma_v)
    report.seconds_eq = timer() - start

    start = timer()
    dropped = view.dropped_attributes()
    report.dropped_attributes = len(dropped)
    sigma_c = rbr(sigma_v, dropped, partition_size=partition_size, stats=rbr_stats)  # line 11
    report.after_rbr_size = len(sigma_c)
    report.seconds_rbr = timer() - start

    sigma_d = eq2cfd(eq, view)  # line 12

    start = timer()
    combined = sigma_c + sigma_d
    if final_min_cover:
        report.cover = min_cover(combined)  # line 13
        report.seconds_final_mincover = timer() - start
    else:
        seen: set[CFD] = set()
        unique: list[CFD] = []
        for phi in combined:
            if phi not in seen and not phi.is_trivial():
                seen.add(phi)
                unique.append(phi)
        report.cover = unique
    return report


def _inconsistent_pair(view: SPCView) -> list[CFD]:
    """The Lemma 4.5 cover for an always-empty view.

    Two CFDs forcing distinct constants on one projected attribute: no
    tuple can satisfy both, which is exactly the statement that the view
    is empty, and every view CFD follows from the pair.
    """
    domains = view.extended_attributes()
    for attr in view.projection:
        domain = domains[attr]
        if domain.is_finite and domain.size < 2:
            continue
        if domain.is_finite:
            a, b = list(domain)[:2]
        else:
            a, b = "⊥0", "⊥1"
        return [
            CFD.constant(view.name, attr, a),
            CFD.constant(view.name, attr, b),
        ]
    raise ValueError(
        "view projects only single-valued finite domains; "
        "cannot express the empty view as conflicting CFDs"
    )


def _apply_domain_constraints(
    sigma_v: list[CFD], eq: EquivalenceClasses, view: SPCView
) -> list[CFD]:
    """Figure 2 lines 7-10: substitute representatives, use keys.

    Every class member is replaced by its representative (a projected
    member when the class meets ``Y``).  Keyed attributes — constant on
    all of ``Es`` — are then eliminated: a wildcard or matching-constant
    LHS occurrence is redundant, a conflicting-constant occurrence means
    the CFD never fires, and a CFD concluding a keyed attribute is
    subsumed by the key (its conclusion already holds on every tuple; a
    conflicting constant conclusion would deny a sub-pattern, which the
    cover drops — see the module docstring).
    """
    substitution: dict[str, str] = {}
    for attr in view.extended_attributes():
        rep = eq.representative(attr, prefer=view.projection)
        if rep != attr:
            substitution[attr] = rep

    result: list[CFD] = []
    seen: set[CFD] = set()
    for phi in sigma_v:
        candidate: CFD | None = phi
        for old, new in substitution.items():
            if candidate is None:
                break
            if old in candidate.attributes:
                candidate = candidate.substitute(old, new)
        if candidate is None:
            continue
        candidate = _eliminate_keyed(candidate, eq)
        if candidate is None:
            continue
        candidate = candidate.simplified()
        if candidate.is_trivial() or candidate in seen:
            continue
        seen.add(candidate)
        result.append(candidate)
    return result


def _eliminate_keyed(phi: CFD, eq: EquivalenceClasses) -> CFD | None:
    """Remove keyed attributes from *phi*; ``None`` kills the CFD."""
    for attr, entry in list(phi.lhs):
        if not eq.has_key(attr):
            continue
        key = eq.key(attr)
        if is_wildcard(entry) or (is_const(entry) and entry.value == key):
            phi = phi.drop_lhs_attribute(attr)
        else:
            return None  # the CFD can never fire on Es
    rhs_attr = phi.rhs_attr
    if eq.has_key(rhs_attr):
        # The conclusion is already forced by the key (or denies a
        # sub-pattern, which the cover does not track).
        return None
    return phi
