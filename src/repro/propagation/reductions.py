"""The 3SAT reduction of Theorem 3.2.

The lower bound for propagation in the general setting is shown by encoding
a 3SAT instance ``phi = C1 ^ ... ^ Cn`` over variables ``x1 ... xm`` as a
propagation question over an SC view: *phi is satisfiable iff the view FD
is NOT propagated*.  This module constructs the encoding exactly as in the
appendix proof, so the reduction can be exercised end to end — the tests
cross-check the propagation verdict against brute-force SAT solving, and
the Table 1/2 benchmarks use the family to demonstrate the exponential
blow-up finite domains introduce.

Encoding recap (appendix, proof of Theorem 3.2):

- ``R0(X, A, Z)`` holds the truth assignment — ``X`` a variable index
  (infinite domain), ``A`` its truth value, ``Z`` a free Boolean — with
  the FD ``X -> A`` ensuring assignments are functions.
- ``Rj(A1, A2, Xj, Aj)`` encodes clause ``Cj``: the Boolean pair
  ``(A1, A2)`` is a 2-bit counter and the FD ``A1 A2 -> Xj Aj`` pins the
  relation's content to the clause's literals, while ``Xj -> Aj`` keeps
  per-variable truth values functional.
- The SC view conjoins: a free copy of ``R0`` (supplying the view FD
  ``X, A -> Z``), selections forcing ``R0`` to mention ``x1 ... xm``,
  joins forcing the ``Rj`` assignments to be consistent with ``R0``, and
  per-clause gadgets enumerating the literal choices.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..algebra.ops import AttrEq, ConstEq
from ..algebra.spc import RelationAtom, SPCView
from ..core.cfd import CFD
from ..core.domains import BOOL, INT
from ..core.fd import FD
from ..core.schema import Attribute, DatabaseSchema, RelationSchema


@dataclass(frozen=True)
class ThreeSat:
    """A 3SAT instance: ``clauses`` holds triples of nonzero literals.

    Literal ``+i`` means variable ``x_i``; ``-i`` means its negation.
    """

    num_variables: int
    clauses: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for literal in clause:
                if literal == 0 or abs(literal) > self.num_variables:
                    raise ValueError(f"bad literal {literal} in clause {clause}")

    def is_satisfiable(self) -> bool:
        """Brute-force satisfiability (ground truth for the tests)."""
        for bits in itertools.product(
            (False, True), repeat=self.num_variables
        ):
            if all(
                any(
                    bits[abs(lit) - 1] == (lit > 0) for lit in clause
                )
                for clause in self.clauses
            ):
                return True
        return False


@dataclass
class PropagationEncoding:
    """The Theorem 3.2 artifacts for a 3SAT instance."""

    schema: DatabaseSchema
    sigma: list[FD]
    view: SPCView
    psi: CFD


# The truth values are encoded as the Booleans of the BOOL finite domain.
_TRUE = True
_FALSE = False


def encode(formula: ThreeSat) -> PropagationEncoding:
    """Build ``(R, Sigma, V, psi)`` with ``SAT(formula) <=> Sigma |/=_V psi``."""
    m = formula.num_variables
    n = len(formula.clauses)

    r0 = RelationSchema(
        "R0",
        [Attribute("X", INT), Attribute("A", BOOL), Attribute("Z", BOOL)],
    )
    clause_rels = [
        RelationSchema(
            f"R{j + 1}",
            [
                Attribute("A1", BOOL),
                Attribute("A2", BOOL),
                Attribute("X", INT),
                Attribute("A", BOOL),
            ],
        )
        for j in range(n)
    ]
    schema = DatabaseSchema([r0, *clause_rels])

    sigma: list[FD] = [FD("R0", ("X",), ("A",))]
    for j in range(n):
        sigma.append(FD(f"R{j + 1}", ("A1", "A2"), ("X", "A")))
        sigma.append(FD(f"R{j + 1}", ("X",), ("A",)))

    atoms: list[RelationAtom] = []
    selection: list[AttrEq | ConstEq] = []

    def r0_atom(prefix: str) -> None:
        atoms.append(
            RelationAtom(
                "R0",
                {"X": f"{prefix}.X", "A": f"{prefix}.A", "Z": f"{prefix}.Z"},
            )
        )

    def clause_atom(j: int, prefix: str) -> None:
        atoms.append(
            RelationAtom(
                f"R{j + 1}",
                {
                    "A1": f"{prefix}.A1",
                    "A2": f"{prefix}.A2",
                    "X": f"{prefix}.X",
                    "A": f"{prefix}.A",
                },
            )
        )

    # e: the free copy of R0 carrying the view FD.
    r0_atom("e")

    # e01: R0 must mention every variable index 1..m.
    for i in range(1, m + 1):
        r0_atom(f"c{i}")
        selection.append(ConstEq(f"c{i}.X", i))

    # e02: clause-relation assignments agree with R0's assignment.
    for j in range(n):
        r0_atom(f"d{j}")
        clause_atom(j, f"f{j}")
        selection.append(AttrEq(f"d{j}.X", f"f{j}.X"))
        selection.append(AttrEq(f"d{j}.A", f"f{j}.A"))

    # ej: the 2-bit counter enumerates the clause's literals (the fourth
    # counter value repeats the first literal, as in the paper).
    for j, clause in enumerate(formula.clauses):
        literals = [clause[0], clause[1], clause[2], clause[0]]
        for k, literal in enumerate(literals):
            prefix = f"g{j}_{k}"
            clause_atom(j, prefix)
            selection.append(ConstEq(f"{prefix}.A1", bool(k & 2)))
            selection.append(ConstEq(f"{prefix}.A2", bool(k & 1)))
            selection.append(ConstEq(f"{prefix}.X", abs(literal)))
            selection.append(ConstEq(f"{prefix}.A", literal > 0))

    view = SPCView(
        "V",
        schema,
        atoms,
        selection,
        projection=None,  # SC view: no projection, all attributes kept.
    )
    psi = CFD("V", {"e.X": "_", "e.A": "_"}, {"e.Z": "_"})
    return PropagationEncoding(schema, sigma, view, psi)
