"""Propagation covers for SPCU views (Section 7 future work: union).

``PropCFD_SPC`` handles a single SPC block; the paper leaves union
support as future work.  This module implements a candidate-and-verify
algorithm for ``V = V1 U ... U Vk``:

1. Compute the per-branch minimal covers ``C_i = PropCFD_SPC(Sigma, V_i)``
   (branches are union-compatible, so projected attributes share names).
2. A CFD propagated via the union must be propagated via *every* branch
   and across every branch pair, so each ``phi`` in ``U C_i`` is checked
   with the exact SPCU decision procedure of Theorem 3.1/3.5.
3. Branch-only facts are rescued by *guarding*: when a branch pins
   constants on projected attributes (its ``Rc`` and selection keys —
   think the country-code tags of Example 1.1), a candidate that fails
   globally is retried with those constants added to its LHS.  This is
   precisely how ``f1: zip -> street`` on the UK source resurfaces as
   ``phi1: (CC='44', zip) -> street`` on the integrated view.
4. Constant guards of *other* branches are also combined with each
   branch's candidates, so cross-branch pattern CFDs are found when the
   guards separate the branches.
5. The survivors are minimized with ``MinCover``.

The result is **sound by construction** — every member passes the exact
decision procedure.  Completeness is relative to the candidate pool
(per-branch covers plus their guarded variants); this covers the
motivating examples and every workload in the tests, but a cover for an
adversarial union may in principle need view CFDs outside the pool —
which is why the paper calls union support "interesting".
"""

from __future__ import annotations

from typing import Iterable

from ..algebra.spc import SPCView
from ..algebra.spcu import SPCUView
from ..core.cfd import CFD
from ..core.mincover import min_cover
from ..core.values import is_const
from .check import DependencyLike, propagates
from .cover import prop_cfd_spc
from .eqclasses import BottomEQ, compute_eq


def branch_guards(branch: SPCView) -> dict[str, object]:
    """The constants a branch forces on its *projected* attributes.

    Computed from ``ComputeEQ`` over the branch alone (selection plus
    ``Rc``), restricted to the projection.  These are the attributes that
    distinguish branches in a tagged union.
    """
    eq = compute_eq(branch, [])
    if isinstance(eq, BottomEQ):
        return {}
    guards: dict[str, object] = {}
    for attr in branch.projection:
        if eq.has_key(attr):
            guards[attr] = eq.key(attr)
    return guards


def _guarded(phi: CFD, guards: dict[str, object], view_name: str) -> CFD | None:
    """*phi* with guard constants added to (or checked against) its LHS."""
    lhs = dict(phi.lhs)
    for attr, value in guards.items():
        if attr == phi.rhs_attr and attr not in lhs:
            continue  # guarding the conclusion adds nothing
        current = lhs.get(attr)
        if current is None:
            lhs[attr] = value
        elif is_const(current):
            if current.value != value:
                return None  # the candidate can never fire on this branch
        else:
            lhs[attr] = value
    candidate = CFD(view_name, lhs, dict(phi.rhs))
    return None if candidate.is_trivial() else candidate


def prop_cfd_spcu(
    sigma: Iterable[DependencyLike],
    view: SPCUView,
    partition_size: int | None = 40,
    max_instantiations: int | None = None,
    check=None,
    check_many=None,
    branch_cover=None,
    seed: list[CFD] | None = None,
    seed_report=None,
) -> list[CFD]:
    """A propagation cover of *sigma* via the SPCU view *view*.

    Sound: every returned CFD satisfies ``Sigma |=_V phi`` (verified with
    the exact checker).  See the module docstring for the completeness
    caveat.

    *check* substitutes the candidate-verification predicate (signature of
    :func:`repro.propagation.check.propagates`).  *check_many* substitutes
    a batched verifier ``(sigma, view, phis) -> list[bool]`` and takes
    precedence over *check*: the batch engine injects
    :meth:`~repro.propagation.engine.PropagationEngine.check_many` here so
    all candidates of one union view are verified as a single batch —
    sharing the k^2 pair tableaux, Sigma normalization and fingerprints,
    and fanning cache misses out across the engine's worker pool.

    *branch_cover* substitutes the per-branch pool generator (signature
    ``(sigma, branch, partition_size) -> list[CFD]``; default is the
    verbatim :func:`~repro.propagation.cover.prop_cfd_spc` call) — the
    engine's delta path injects a provenance-keyed memo here, so after a
    Sigma edit only the branches reading the edited relation recompute
    their covers.  The substitute must return exactly what the default
    would; the candidate pool is part of the answer.

    *seed* is the view's previous cover (captured when an edit
    invalidated its memo line), verified **first**: if every member is
    still in the candidate pool and still propagates, the recomputation
    is a *seed hit* — and the verification has already warmed the
    verdict memo the full pool sweep is about to consult.  The emitted
    cover is ``MinCover`` of the full pool's survivors either way
    (byte-identical to a cold run by construction); *seed_report* (a
    ``bool -> None`` callback) receives the hit/miss outcome.
    """
    if check is None:
        check = propagates
    branches = list(view.branches)
    per_branch_covers = [
        branch_cover(sigma, branch, partition_size)
        if branch_cover is not None
        else prop_cfd_spc(sigma, branch, partition_size=partition_size)
        for branch in branches
    ]
    guards = [branch_guards(branch) for branch in branches]

    candidates: list[CFD] = []
    seen: set[CFD] = set()

    def add(phi: CFD | None) -> None:
        if phi is None or phi in seen:
            return
        if not set(phi.attributes) <= set(view.projection):
            return
        seen.add(phi)
        candidates.append(phi)

    for i, cover in enumerate(per_branch_covers):
        for phi in cover:
            phi = phi.with_relation(view.name)
            add(phi)
            if not phi.is_equality:
                # The branch's own guard rescues branch-local facts;
                # other branches' guards build cross-branch patterns.
                for guard in guards:
                    add(_guarded(phi, guard, view.name))
                add(_guarded(phi, guards[i], view.name))

    def verify(phis: list[CFD]) -> list[bool]:
        if check_many is not None:
            return check_many(sigma, view, phis)
        return [
            check(sigma, view, phi, max_instantiations=max_instantiations)
            for phi in phis
        ]

    if seed:
        # Verify-first: re-check the previous cover before anything
        # else.  A hit means the edit left the cover's members intact;
        # either way the checks land in the caller's verdict memo, so
        # the full sweep below re-serves them instead of re-chasing.
        pool = set(candidates)
        live = [phi for phi in seed if phi in pool]
        hit = len(live) == len(seed) and all(verify(live))
        if seed_report is not None:
            seed_report(hit)

    survivors = [
        phi for phi, verdict in zip(candidates, verify(candidates)) if verdict
    ]
    return min_cover(survivors)
