"""Dependency propagation: decision procedures and cover computation."""

from .check import (
    BranchPairCache,
    Counterexample,
    UnsupportedViewError,
    find_counterexample,
    propagates,
)
from .closure_baseline import (
    closure_projection_cover,
    exponential_family,
    exponential_family_schema,
)
from .cover import CoverReport, prop_cfd_spc, prop_cfd_spc_report
from .emptiness import nonempty_witness, view_is_empty
from .eqclasses import BottomEQ, EquivalenceClasses, compute_eq, eq2cfd
from .general import (
    finite_branching_cells,
    propagates_general,
    propagates_ptime_chase,
)
from .general_cover import prop_cfd_spc_general
from .spcu_cover import branch_guards, prop_cfd_spcu
from .rbr import RBRStats, a_resolvent, drop, rbr, resolvents
from .reductions import PropagationEncoding, ThreeSat, encode
from .engine import EngineStats, PropagationEngine

__all__ = [
    "BottomEQ",
    "BranchPairCache",
    "Counterexample",
    "CoverReport",
    "EngineStats",
    "EquivalenceClasses",
    "PropagationEngine",
    "RBRStats",
    "PropagationEncoding",
    "ThreeSat",
    "UnsupportedViewError",
    "a_resolvent",
    "branch_guards",
    "closure_projection_cover",
    "compute_eq",
    "drop",
    "encode",
    "eq2cfd",
    "exponential_family",
    "exponential_family_schema",
    "find_counterexample",
    "finite_branching_cells",
    "nonempty_witness",
    "prop_cfd_spc",
    "prop_cfd_spc_general",
    "prop_cfd_spc_report",
    "prop_cfd_spcu",
    "propagates",
    "propagates_general",
    "propagates_ptime_chase",
    "rbr",
    "resolvents",
    "view_is_empty",
]
