"""Dependency propagation: decision procedures and cover computation.

The free functions :func:`propagates`, :func:`prop_cfd_spc` and
:func:`prop_cfd_spcu` are kept as **deprecation shims** over the unified
service API (:mod:`repro.api`): they build the equivalent typed request,
send it through the process-wide default :class:`repro.api.PropagationService`
with caching disabled (preserving the plain single-query behavior, byte
for byte), and unwrap service errors back to the original exception
types.  New code should construct a service and submit
:class:`repro.api.CheckRequest` / :class:`repro.api.CoverRequest`
objects instead — see ``docs/api.md``.
"""

import warnings

from .check import (
    BranchPairCache,
    Counterexample,
    UnsupportedViewError,
    find_counterexample,
)
from .check import propagates as _raw_propagates
from .closure_baseline import (
    closure_projection_cover,
    exponential_family,
    exponential_family_schema,
)
from .cover import CoverReport, prop_cfd_spc_report
from .cover import prop_cfd_spc as _raw_prop_cfd_spc
from .emptiness import nonempty_witness, view_is_empty
from .eqclasses import BottomEQ, EquivalenceClasses, compute_eq, eq2cfd
from .general import (
    finite_branching_cells,
    propagates_general,
    propagates_ptime_chase,
)
from .general_cover import prop_cfd_spc_general
from .spcu_cover import branch_guards
from .spcu_cover import prop_cfd_spcu as _raw_prop_cfd_spcu
from .rbr import RBRStats, a_resolvent, drop, rbr, resolvents
from .reductions import PropagationEncoding, ThreeSat, encode
from .engine import EngineStats, PropagationEngine

__all__ = [
    "BottomEQ",
    "BranchPairCache",
    "Counterexample",
    "CoverReport",
    "EngineStats",
    "EquivalenceClasses",
    "PropagationEngine",
    "RBRStats",
    "PropagationEncoding",
    "ThreeSat",
    "UnsupportedViewError",
    "a_resolvent",
    "branch_guards",
    "closure_projection_cover",
    "compute_eq",
    "drop",
    "encode",
    "eq2cfd",
    "exponential_family",
    "exponential_family_schema",
    "find_counterexample",
    "finite_branching_cells",
    "nonempty_witness",
    "prop_cfd_spc",
    "prop_cfd_spc_general",
    "prop_cfd_spc_report",
    "prop_cfd_spcu",
    "propagates",
    "propagates_general",
    "propagates_ptime_chase",
    "rbr",
    "resolvents",
    "view_is_empty",
]


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.propagation.{name} is deprecated; submit a {replacement} "
        "through repro.api.PropagationService instead (docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def _through_service(submit):
    """Run *submit* against the default service, unwrapping ApiError.

    The shims promise the legacy exception surface (KeyError for
    unprojected attributes, UnsupportedViewError for unsupported view
    languages, ...), so the service's normalized errors are unwrapped
    back to their original cause.
    """
    from ..api.errors import ApiError
    from ..api.service import default_service

    try:
        return submit(default_service())
    except ApiError as exc:
        if exc.__cause__ is not None:
            raise exc.__cause__ from None
        raise


def propagates(
    sigma,
    view,
    phi,
    max_instantiations=None,
    assume_infinite=False,
    cache=None,
):
    """Deprecated shim: decide ``Sigma |=_V phi`` through the service.

    Equivalent to submitting a single-target
    :class:`repro.api.CheckRequest` with ``use_cache=False``.  An
    explicit *cache* (the tableau-sharing escape hatch) bypasses the
    service and calls the raw procedure.
    """
    _deprecated("propagates", "CheckRequest")
    if cache is not None:
        return _raw_propagates(
            sigma,
            view,
            phi,
            max_instantiations=max_instantiations,
            assume_infinite=assume_infinite,
            cache=cache,
        )
    from ..api.requests import CheckRequest

    return _through_service(
        lambda service: service.check(
            CheckRequest(
                view=view,
                targets=[phi],
                sigma=list(sigma),
                use_cache=False,
                max_instantiations=max_instantiations,
                assume_infinite=assume_infinite,
            )
        ).propagated[0]
    )


def prop_cfd_spc(
    sigma,
    view,
    partition_size=40,
    final_min_cover=True,
    minimize_input=True,
):
    """Deprecated shim: ``PropCFD_SPC`` through the service.

    Equivalent to submitting a :class:`repro.api.CoverRequest` with
    ``use_cache=False``.  Non-default ablation knobs bypass the service
    and call the raw procedure (the service always runs the paper
    defaults).
    """
    _deprecated("prop_cfd_spc", "CoverRequest")
    if partition_size != 40 or not final_min_cover or not minimize_input:
        return _raw_prop_cfd_spc(
            sigma,
            view,
            partition_size=partition_size,
            final_min_cover=final_min_cover,
            minimize_input=minimize_input,
        )
    from ..api.requests import CoverRequest

    return _through_service(
        lambda service: service.cover(
            CoverRequest(view=view, sigma=list(sigma), use_cache=False)
        ).cover
    )


def prop_cfd_spcu(
    sigma,
    view,
    partition_size=40,
    max_instantiations=None,
    check=None,
    check_many=None,
):
    """Deprecated shim: the SPCU cover through the service.

    Equivalent to submitting a :class:`repro.api.CoverRequest` with
    ``use_cache=False``.  An injected verification predicate (*check* /
    *check_many*) or a non-default *partition_size* (including ``None``,
    which disables RBR partitioning) bypasses the service and calls the
    raw procedure with those arguments intact.
    """
    _deprecated("prop_cfd_spcu", "CoverRequest")
    if check is not None or check_many is not None or partition_size != 40:
        return _raw_prop_cfd_spcu(
            sigma,
            view,
            partition_size=partition_size,
            max_instantiations=max_instantiations,
            check=check,
            check_many=check_many,
        )
    from ..api.requests import CoverRequest

    return _through_service(
        lambda service: service.cover(
            CoverRequest(
                view=view,
                sigma=list(sigma),
                use_cache=False,
                max_instantiations=max_instantiations,
            )
        ).cover
    )
