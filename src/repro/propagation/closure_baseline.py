"""The textbook closure-based propagation-cover method (the baseline).

Section 4.1: the method covered by database texts computes the closure
``F+`` of the source FDs — *always* exponential time — and projects it
onto the view attributes.  Gottlob's RBR (and ``PropCFD_SPC`` here) exists
precisely to avoid that cost on the common inputs whose covers are small.

This module implements the baseline for FD sources and projection views so
the A1 ablation benchmark can measure the blow-up, plus the Example 4.1
family on which *every* cover is necessarily exponential — the case where
the baseline and RBR are both doomed and the paper's polynomial-time
heuristic (truncate at a bound) is the only escape.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.fd import FD, fd_closure, minimal_cover, project_fds
from ..core.schema import DatabaseSchema, RelationSchema


def closure_projection_cover(
    fds: Iterable[FD],
    relation: str,
    attributes: Sequence[str],
    projection: Sequence[str],
    minimize: bool = True,
) -> list[FD]:
    """Cover of the FDs propagated via ``pi_projection(relation)``.

    Computes the full closure over *attributes* and keeps the FDs whose
    attributes survive the projection.  Exponential in ``len(attributes)``
    by construction — this is the point of the baseline.
    """
    closure = fd_closure(relation, attributes, fds)
    projected = project_fds(closure, set(projection), relation=relation)
    if minimize:
        return minimal_cover(projected)
    return projected


def exponential_family(n: int) -> tuple[RelationSchema, list[FD], list[str]]:
    """The Example 4.1 family: covers are necessarily exponential.

    Schema ``R(A1..An, B1..Bn, C1..Cn, D)`` with FDs ``Ai -> Ci``,
    ``Bi -> Ci`` and ``C1...Cn -> D``; the view projects away the ``Ci``.
    Every cover of the propagated FDs contains all ``2^n`` dependencies
    ``eta_1 ... eta_n -> D`` with ``eta_i`` one of ``Ai``/``Bi``.

    Returns the schema, the source FDs and the projection list.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    a = [f"A{i}" for i in range(1, n + 1)]
    b = [f"B{i}" for i in range(1, n + 1)]
    c = [f"C{i}" for i in range(1, n + 1)]
    schema = RelationSchema("R", a + b + c + ["D"])
    fds: list[FD] = []
    for i in range(n):
        fds.append(FD("R", (a[i],), (c[i],)))
        fds.append(FD("R", (b[i],), (c[i],)))
    fds.append(FD("R", tuple(c), ("D",)))
    projection = a + b + ["D"]
    return schema, fds, projection


def exponential_family_schema(n: int) -> DatabaseSchema:
    """The Example 4.1 schema wrapped as a one-relation database schema."""
    schema, _, _ = exponential_family(n)
    return DatabaseSchema([schema])


def example_41_workload(n: int, defeat_fast_path: bool = False):
    """The Example 4.1 *batch* workload the acceptance experiments share.

    The :func:`exponential_family` sources wrapped as a projection view
    ``V`` plus the ``2^n`` eta-combination queries ``eta_1...eta_n -> D``
    (one per ``Ai``/``Bi`` mask) — the workload the server smoke tests
    and the cache/server benchmarks all replay, defined once so they
    provably replay the *same* batch.

    ``defeat_fast_path=True`` spikes Sigma with a CFD so the engine's
    closure fast path does not trivialize chase-count assertions (the
    cold leg must actually chase for "warm = zero chases" to mean
    anything).

    Returns ``(view, sigma, queries)``; callers needing the wire format
    serialize with :mod:`repro.io`.
    """
    from ..algebra.spc import RelationAtom, SPCView
    from ..core.cfd import CFD

    schema, fds, projection = exponential_family(n)
    view = SPCView(
        "V",
        DatabaseSchema([schema]),
        [RelationAtom("R", {attr: attr for attr in schema.attribute_names})],
        projection=projection,
    )
    sigma: list = list(fds)
    if defeat_fast_path:
        sigma.append(CFD("R", {"A1": "1"}, {"D": "9"}))
    queries = []
    for mask in range(2**n):
        lhs = tuple(
            (f"A{i + 1}" if mask & (1 << i) else f"B{i + 1}") for i in range(n)
        )
        queries.append(FD("V", lhs, ("D",)))
    return view, sigma, queries


def union_shard_workload():
    """The 3-branch union workload the shard/orchestrator experiments share.

    A union view ``U`` over relations ``R1``/``R2``/``R3`` (one tagged
    branch each) whose ``k² = 9`` branch-pair space gives the shard
    scheduler — and a ``shard_index`` worker fleet — real work to deal,
    with Sigma spiked per relation so nothing trivializes into the
    closure fast path.  Defined once so the transport acceptance test
    and the CI orchestrator smoke provably replay the *same* fleet
    workload.

    Returns ``(schema, sigma, view, phis)`` objects; callers needing the
    wire format serialize with :mod:`repro.io`.
    """
    from ..algebra.spc import RelationAtom, SPCView
    from ..algebra.spcu import SPCUView
    from ..core.cfd import CFD

    attrs = ["A", "B", "C", "D"]
    relations = ("R1", "R2", "R3")
    schema = DatabaseSchema([RelationSchema(rel, attrs) for rel in relations])
    branches = [
        SPCView(
            "U",
            schema,
            [RelationAtom(rel, {a: a for a in attrs})],
            projection=["A", "B", "CC"],
            constants={"CC": tag},
        )
        for rel, tag in zip(relations, ("1", "2", "3"))
    ]
    sigma: list = []
    for rel in relations:
        sigma += [
            FD(rel, ("A",), ("B",)),
            FD(rel, ("B",), ("C",)),
            CFD(rel, {"A": "1"}, {"D": "9"}),
        ]
    phis = [
        CFD("U", {"A": "_"}, {"B": "_"}),
        CFD("U", {"CC": "1", "A": "_"}, {"B": "_"}),
        CFD("U", {"CC": "2", "A": "_"}, {"B": "_"}),
        CFD("U", {"A": "_", "B": "_"}, {"CC": "_"}),
        CFD("U", {"CC": "1"}, {"CC": "1"}),
    ]
    return schema, sigma, SPCUView("U", branches), phis
