"""Delta-vs-cold differential helpers for the streaming workload.

The delta-aware recomputation (the per-pair verdict memo, the
provenance-keyed branch-cover memo and the verify-first cover seeds —
see :mod:`repro.propagation.engine.core`) is required to be
**byte-identical** to a cold recompute.  This module holds the oracle
side of that contract:

- :class:`ColdReference` mirrors a trace's Sigma state edit by edit
  (applying exactly the diff semantics of
  :meth:`~repro.api.service.PropagationService.delta_sigma`) and answers
  every check/cover op with a *fresh* service — no warm state, no seeds,
  no memos carried across ops.  The differential suite, the streaming
  session's ``verify`` mode and the fuzz matrix's ``delta`` entry all
  compare the warm delta path against it.
- :func:`canonical_verdicts` / :func:`canonical_cover` — the canonical
  answer strings the comparisons happen on (stable across transports
  and engine settings).
- :func:`warmth_fraction` — the retained-warmth fraction of one
  ``delta_sigma`` response, the per-edit metric the benchmarks track.
"""

from __future__ import annotations

import json

from ..api import CheckRequest, CoverRequest, PropagationService, SigmaUpdate
from ..io import dependencies_from_json, dependencies_to_json
from ..propagation.check import _as_cfds
from .trace import parse_trace

__all__ = [
    "ColdReference",
    "canonical_cover",
    "canonical_verdicts",
    "warmth_fraction",
]


def canonical_verdicts(verdicts) -> str:
    """A stable string for one check answer (``"110..."``)."""
    return "".join("1" if v else "0" for v in verdicts)


def canonical_cover(cover) -> str:
    """A stable string for one cover answer (sorted wire documents)."""
    return json.dumps(
        sorted(
            json.dumps(doc, sort_keys=True)
            for doc in dependencies_to_json(cover)
        )
    )


def warmth_fraction(update: SigmaUpdate) -> float:
    """Retained warm lines / pre-edit warm lines for one edit.

    An edit that found nothing warm (cold service, first edit) retains
    everything vacuously — reported as ``1.0`` so trace-level means are
    not skewed by the warm-up edits.
    """
    total = update.invalidated + update.retained
    return 1.0 if total == 0 else update.retained / total


class ColdReference:
    """The cold oracle: trace state mirrored, every answer from scratch.

    ``apply_edit`` replays a trace edit op against a private Sigma list
    with the exact ``delta_sigma`` diff semantics (normalized-subset
    removal, adds deduplicated against the survivors), so the mirrored
    set always equals the service's registered set.  ``check``/``cover``
    build a **fresh** :class:`~repro.api.PropagationService` per call:
    caches warm only within the one answer, exactly what "cold
    recompute" means.
    """

    def __init__(self, trace: dict, **service_options) -> None:
        self._schema, self._sigma, self._views, _ = parse_trace(trace)
        self._sigma = list(self._sigma)
        self._options = service_options

    @property
    def sigma(self) -> list:
        """The mirrored live Sigma (shared-nothing copy)."""
        return list(self._sigma)

    def apply_edit(self, op: dict) -> None:
        remove_cfds = set(_as_cfds(dependencies_from_json(op.get("remove", []))))
        kept = [
            dep
            for dep in self._sigma
            if not (
                remove_cfds
                and set(_as_cfds([dep]))
                and set(_as_cfds([dep])) <= remove_cfds
            )
        ]
        present = {frozenset(_as_cfds([dep])) for dep in kept}
        for dep in dependencies_from_json(op.get("add", [])):
            normalized = frozenset(_as_cfds([dep]))
            if normalized in present:
                continue
            present.add(normalized)
            kept.append(dep)
        self._sigma = kept

    def _service(self) -> PropagationService:
        service = PropagationService(**self._options)
        service.workspace.add_schema("default", self._schema)
        service.workspace.add_sigma("default", list(self._sigma))
        for name, view in self._views.items():
            service.workspace.add_view(name, view)
        return service

    def check(self, view_name: str, targets) -> list[bool]:
        return self._service().check(
            CheckRequest(view=view_name, targets=list(targets))
        ).propagated

    def cover(self, view_name: str):
        return self._service().cover(CoverRequest(view=view_name)).cover

    def answer(self, op: dict) -> str:
        """The canonical cold answer for one trace query op."""
        if op["op"] == "check":
            return canonical_verdicts(
                self.check(op["view"], dependencies_from_json(op["targets"]))
            )
        if op["op"] == "cover":
            return canonical_cover(self.cover(op["view"]))
        raise ValueError(f"not a query op: {op['op']!r}")
