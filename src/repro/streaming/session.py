"""The continuous-edit session driver.

:class:`StreamingSession` applies one trace (:mod:`repro.streaming.trace`)
against a live target — an in-process
:class:`~repro.api.PropagationService` or a :func:`repro.api.connect`
client over any endpoint — through the same typed request objects either
way.  Per edit it records what the delta path did (lines invalidated
versus retained, the warmth fraction) and what the follow-up traffic
cost (wall time and the engine counters it moved), aggregating into a
:class:`StreamingReport`: steady-state latency and retained warmth over
the whole trace, the two curves ``benchmarks/bench_incremental.py``
charts.

With ``verify=ColdReference(trace)`` every query answer is compared to a
fresh cold recompute as the session runs — the byte-identity contract of
the delta path, enforced live (:class:`DeltaMismatch` on divergence).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

from ..api import CheckRequest, CoverRequest, UpdateSigmaRequest
from ..io import dependencies_from_json
from .delta import ColdReference, canonical_cover, canonical_verdicts, warmth_fraction
from .trace import parse_trace

__all__ = [
    "DeltaMismatch",
    "EditRecord",
    "StreamingReport",
    "StreamingSession",
]


class DeltaMismatch(AssertionError):
    """The warm delta path diverged from the cold reference."""


@dataclass
class EditRecord:
    """One edit plus its follow-up traffic, as measured."""

    index: int
    kind: str
    relation: str
    invalidated: int
    retained: int
    warmth: float
    edit_ms: float
    op_ms: float
    ops: int
    chases: int
    pair_chases: int
    cover_seed_hits: int
    cover_seed_misses: int

    def to_json(self) -> dict:
        return asdict(self)


@dataclass
class StreamingReport:
    """What one trace replay measured, edit by edit and in aggregate.

    ``answers`` holds the canonical string per query op (trace order) —
    the digest the differential suite compares across delta and cold
    runs.  ``steady_state_ms`` is the mean per-op latency over the
    second half of the trace, past the warm-up transient.
    """

    edits: int = 0
    queries: int = 0
    records: list[EditRecord] = field(default_factory=list)
    answers: list[str] = field(default_factory=list)

    @property
    def mean_warmth(self) -> float:
        if not self.records:
            return 1.0
        return sum(r.warmth for r in self.records) / len(self.records)

    @property
    def steady_state_ms(self) -> float:
        tail = self.records[len(self.records) // 2 :]
        ops = sum(r.ops for r in tail)
        if ops == 0:
            return 0.0
        return sum(r.op_ms for r in tail) / ops

    @property
    def total_ms(self) -> float:
        return sum(r.edit_ms + r.op_ms for r in self.records)

    def to_json(self) -> dict:
        return {
            "edits": self.edits,
            "queries": self.queries,
            "mean_warmth": self.mean_warmth,
            "steady_state_ms": self.steady_state_ms,
            "total_ms": self.total_ms,
            "records": [r.to_json() for r in self.records],
        }


class StreamingSession:
    """Drive a trace against a live service or client.

    The target only needs the service request surface (``check`` /
    ``cover`` / ``delta_sigma``); registration dispatches on shape —
    a client exposes ``register_schema``, a service its ``workspace``.
    """

    def __init__(self, target, trace: dict, verify: ColdReference | None = None):
        self.target = target
        self.trace = trace
        self.verify = verify

    def _register(self) -> dict:
        schema, sigma, views, ops = parse_trace(self.trace)
        if hasattr(self.target, "register_schema"):
            self.target.register_schema("default", schema)
            self.target.register_sigma("default", sigma)
            for name, view in views.items():
                self.target.register_view(name, view)
        else:
            self.target.workspace.add_schema("default", schema)
            self.target.workspace.add_sigma("default", list(sigma))
            for name, view in views.items():
                self.target.workspace.add_view(name, view)
        return ops

    def _answer(self, op: dict) -> tuple[str, object]:
        if op["op"] == "check":
            verdict = self.target.check(
                CheckRequest(
                    view=op["view"],
                    targets=dependencies_from_json(op["targets"]),
                )
            )
            return canonical_verdicts(verdict.propagated), verdict
        if op["op"] == "cover":
            result = self.target.cover(CoverRequest(view=op["view"]))
            return canonical_cover(result.cover), result
        raise ValueError(f"not a query op: {op['op']!r}")

    def run(self) -> StreamingReport:
        ops = self._register()
        report = StreamingReport()
        record: EditRecord | None = None
        for op in ops:
            if op["op"] == "edit":
                started = time.perf_counter()
                update = self.target.delta_sigma(
                    UpdateSigmaRequest(
                        name="default",
                        add=dependencies_from_json(op["add"]),
                        remove=dependencies_from_json(op["remove"]),
                    )
                )
                elapsed = (time.perf_counter() - started) * 1000.0
                if self.verify is not None:
                    self.verify.apply_edit(op)
                record = EditRecord(
                    index=report.edits,
                    kind=op["kind"],
                    relation=op["relation"],
                    invalidated=update.invalidated,
                    retained=update.retained,
                    warmth=warmth_fraction(update),
                    edit_ms=elapsed,
                    op_ms=0.0,
                    ops=0,
                    chases=0,
                    pair_chases=0,
                    cover_seed_hits=0,
                    cover_seed_misses=0,
                )
                report.records.append(record)
                report.edits += 1
                continue
            started = time.perf_counter()
            answer, response = self._answer(op)
            elapsed = (time.perf_counter() - started) * 1000.0
            report.answers.append(answer)
            report.queries += 1
            if self.verify is not None:
                expected = self.verify.answer(op)
                if answer != expected:
                    raise DeltaMismatch(
                        f"query #{report.queries - 1} ({op['op']} on "
                        f"{op['view']!r}) after edit #{report.edits - 1}: "
                        f"delta={answer} cold={expected}"
                    )
            if record is not None:
                record.op_ms += elapsed
                record.ops += 1
                stats = response.stats
                record.chases += stats.chases
                record.pair_chases += stats.pair_chases
                record.cover_seed_hits += stats.cover_seed_hits
                record.cover_seed_misses += stats.cover_seed_misses
        return report
