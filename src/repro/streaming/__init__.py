"""Streaming Sigma: delta-aware recomputation under continuous edits.

The package around the continuous-edit workload (``docs/incremental.md``,
"Streaming Sigma"): a seeded, replayable edit-trace format
(:mod:`~repro.streaming.trace`), a session driver applying a trace to a
live service or endpoint while measuring per-edit latency and retained
warmth (:mod:`~repro.streaming.session`), and the cold-recompute oracle
the delta path is differentially held byte-identical to
(:mod:`~repro.streaming.delta`).  Exposed on the command line as
``repro stream``.
"""

from .delta import (
    ColdReference,
    canonical_cover,
    canonical_verdicts,
    warmth_fraction,
)
from .session import DeltaMismatch, EditRecord, StreamingReport, StreamingSession
from .trace import TRACE_FORMAT, generate_trace, load_trace, parse_trace, save_trace

__all__ = [
    "TRACE_FORMAT",
    "ColdReference",
    "DeltaMismatch",
    "EditRecord",
    "StreamingReport",
    "StreamingSession",
    "canonical_cover",
    "canonical_verdicts",
    "generate_trace",
    "load_trace",
    "parse_trace",
    "save_trace",
    "warmth_fraction",
]
