"""The seeded, replayable edit-trace format (``repro-trace/1``).

A *trace* is one continuous-edit workload as a plain JSON document:
a schema, an initial Sigma, named views, and an ``ops`` list that
interleaves Sigma edits with check/cover traffic — everything in the
:mod:`repro.io` wire format, so a trace file replays byte-for-byte with
no reference to generator code or seeds (the same contract as the fuzz
corpus).  :func:`generate_trace` derives one deterministically from a
seed via :mod:`repro.generators`; :class:`~repro.streaming.session.
StreamingSession` applies one to a live service or endpoint.

Ops
---

- ``{"op": "edit", "kind": "add" | "drop" | "tighten", "relation": R,
  "add": [dep...], "remove": [dep...]}`` — one Sigma diff, applied via
  ``delta_sigma`` / ``update-sigma``.  ``tighten`` retires a dependency
  and re-adds it with one wildcard LHS position bound to a constant
  (a strictly narrower pattern), spelled as a remove+add pair so the
  replay path is just the ordinary diff.
- ``{"op": "check", "view": name, "targets": [dep...]}`` — a batched
  ``Sigma |=_V phi`` query.
- ``{"op": "cover", "view": name}`` — a propagation-cover query.

The generator tracks the live Sigma while emitting edits, so drops and
tightens always name currently-registered dependencies and adds never
duplicate one — every edit moves Sigma, which is what makes the
retained-warmth fraction per edit meaningful.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Any

from .. import io as repro_io
from ..core.cfd import CFD
from ..core.values import WILDCARD, is_wildcard
from ..generators import (
    random_cfd,
    random_cfds,
    random_schema,
    random_spcu_view,
    resolve_rng,
)

__all__ = [
    "TRACE_FORMAT",
    "generate_trace",
    "load_trace",
    "parse_trace",
    "save_trace",
]

TRACE_FORMAT = "repro-trace/1"

#: Constants for generated check targets: a small pool so targets
#: collide with Sigma/selection constants often enough to matter.
_TARGET_POOL = ("1", "2", "3", "7")


def _targets(rng: random.Random, view, count: int) -> list[dict]:
    """Random check targets over the view's projection (wire format)."""
    projection = list(view.projection)
    if len(projection) < 2:
        return []
    out = []
    for _ in range(count):
        width = rng.randint(1, min(2, len(projection) - 1))
        chosen = rng.sample(projection, width + 1)
        lhs = {
            a: (WILDCARD if rng.random() < 0.6 else rng.choice(_TARGET_POOL))
            for a in chosen[:-1]
        }
        rhs = WILDCARD if rng.random() < 0.6 else rng.choice(_TARGET_POOL)
        out.append(
            repro_io.dependency_to_json(CFD(view.name, lhs, {chosen[-1]: rhs}))
        )
    return out


def _tightened(rng: random.Random, phi: CFD) -> CFD | None:
    """*phi* with one wildcard LHS position bound to a fresh constant."""
    wildcards = [attr for attr, entry in phi.lhs if is_wildcard(entry)]
    if not wildcards:
        return None
    lhs = dict(phi.lhs)
    lhs[rng.choice(sorted(wildcards))] = rng.randint(1, 100000)
    return CFD(phi.relation, lhs, dict(phi.rhs))


def generate_trace(
    seed: int,
    edits: int,
    ops_per_edit: int = 2,
    num_relations: int = 4,
    num_branches: int = 3,
    cfds_per_relation: int = 2,
) -> dict:
    """A deterministic continuous-edit trace for *seed*.

    ``edits`` Sigma edits (adds, drops and tightens over the live set),
    each followed by ``ops_per_edit`` check/cover ops on an SPCU union
    view of ``num_branches`` branches — the workload where the delta
    path's pair and branch-cover memos have something to retain.
    """
    rng = resolve_rng(None, seed)
    schema = random_schema(
        rng, num_relations=num_relations, min_attributes=3, max_attributes=5
    )
    sigma = random_cfds(
        rng,
        schema,
        count=cfds_per_relation * num_relations,
        max_lhs=2,
        min_lhs=1,
        var_pct=0.5,
    )
    # Single-atom branches keep per-branch provenance to one relation
    # each (an edit elsewhere leaves that branch's pool and pairs warm),
    # and this projection/selection shape yields non-empty union covers
    # often enough that the verify-first cover seeds actually fire.
    view = random_spcu_view(
        rng,
        schema,
        num_branches=num_branches,
        num_projected=4,
        num_selections=2,
        num_atoms=1,
        name="U",
    )

    live: list[CFD] = list(sigma)
    relations = sorted(schema.relations)
    ops: list[dict[str, Any]] = []
    for _ in range(edits):
        kind = rng.choice(("add", "add", "drop", "tighten"))
        op: dict[str, Any] | None = None
        if kind == "drop" and len(live) <= num_relations:
            kind = "add"  # keep Sigma from draining empty
        if kind == "tighten":
            candidates = sorted(
                (
                    phi
                    for phi in live
                    if any(is_wildcard(entry) for _, entry in phi.lhs)
                ),
                key=repr,
            )
            if not candidates:
                kind = "add"
            else:
                old = rng.choice(candidates)
                new = _tightened(rng, old)
                live.remove(old)
                live.append(new)
                op = {
                    "op": "edit",
                    "kind": "tighten",
                    "relation": old.relation,
                    "add": [repro_io.dependency_to_json(new)],
                    "remove": [repro_io.dependency_to_json(old)],
                }
        if kind == "drop":
            old = rng.choice(sorted(live, key=repr))
            live.remove(old)
            op = {
                "op": "edit",
                "kind": "drop",
                "relation": old.relation,
                "add": [],
                "remove": [repro_io.dependency_to_json(old)],
            }
        if op is None:  # "add", or a fallback from above
            relation = schema.relation(rng.choice(relations))
            new = None
            for _attempt in range(8):
                candidate = random_cfd(
                    rng, relation, max_lhs=2, min_lhs=1, var_pct=0.5
                )
                if candidate not in live:
                    new = candidate
                    break
            if new is None:  # pathologically saturated; emit a no-op edit
                op = {
                    "op": "edit",
                    "kind": "add",
                    "relation": relation.name,
                    "add": [],
                    "remove": [],
                }
            else:
                live.append(new)
                op = {
                    "op": "edit",
                    "kind": "add",
                    "relation": relation.name,
                    "add": [repro_io.dependency_to_json(new)],
                    "remove": [],
                }
        ops.append(op)
        for step in range(ops_per_edit):
            if step % 2 == 0:
                ops.append(
                    {
                        "op": "check",
                        "view": view.name,
                        "targets": _targets(rng, view, 2),
                    }
                )
            else:
                ops.append({"op": "cover", "view": view.name})

    return {
        "format": TRACE_FORMAT,
        "seed": seed,
        "edits": edits,
        "ops_per_edit": ops_per_edit,
        "schema": repro_io.schema_to_json(schema),
        "sigma": repro_io.dependencies_to_json(sigma),
        "views": {view.name: repro_io.view_to_json(view)},
        "ops": ops,
    }


def parse_trace(doc: dict) -> tuple:
    """``(schema, sigma, views, ops)`` from a trace document."""
    if doc.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"not a {TRACE_FORMAT} document: format={doc.get('format')!r}"
        )
    schema = repro_io.schema_from_json(doc["schema"])
    sigma = repro_io.dependencies_from_json(doc["sigma"])
    views = {
        name: repro_io.view_from_json(view_doc, schema)
        for name, view_doc in doc["views"].items()
    }
    return schema, sigma, views, list(doc["ops"])


def load_trace(path: str | Path) -> dict:
    """Read and format-check a trace file."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"{path}: not a {TRACE_FORMAT} document "
            f"(format={doc.get('format')!r})"
        )
    return doc


def save_trace(doc: dict, path: str | Path) -> None:
    """Write a trace document (stable formatting, replayable bytes)."""
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
