"""Data cleaning with CFDs: violation detection and greedy repair."""

from .repair import RepairEdit, RepairFailed, repair
from .violations import RuleSummary, Violation, detect, detect_in_rows, summarize

__all__ = [
    "RepairEdit",
    "RepairFailed",
    "RuleSummary",
    "Violation",
    "detect",
    "detect_in_rows",
    "repair",
    "summarize",
]
