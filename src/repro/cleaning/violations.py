"""CFD-based inconsistency detection (the paper's data-cleaning motivation).

CFDs were proposed for data cleaning [8]: a violation of a CFD pinpoints
dirty tuples.  This module turns the satisfaction semantics into a
reporting tool over concrete instances:

- :func:`detect` runs a set of rules against a database and returns
  structured :class:`Violation` records (rule, kind, offending tuples).
- :func:`summarize` aggregates violations per rule — the shape of output
  a cleaning dashboard consumes.

Combined with propagation analysis this implements the workflow of
Section 1's application (3): rules *propagated* from the sources need not
be validated on the view at all; the remaining rules run through
:func:`detect`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..algebra.instance import DatabaseInstance, Relation
from ..core.cfd import CFD
from ..core.fd import FD


@dataclass(frozen=True)
class Violation:
    """One witnessed violation of a rule.

    ``kind`` is ``"constant"`` for single-tuple failures (the tuple does
    not carry the RHS pattern constant), ``"conflict"`` for pair failures
    (two tuples agree on the LHS but differ on the RHS) and ``"equality"``
    for failures of the ``(x || x)`` form.
    """

    rule: CFD
    kind: str
    tuples: tuple[Mapping[str, Any], ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Violation({self.kind}, rule={self.rule}, tuples={len(self.tuples)})"


def _as_cfds(rules: Iterable[CFD | FD]) -> list[CFD]:
    out: list[CFD] = []
    for rule in rules:
        if isinstance(rule, FD):
            rule = CFD.from_fd(rule)
        out.extend(rule.normalize())
    return out


def detect_in_rows(
    rules: Iterable[CFD | FD], rows: Sequence[Mapping[str, Any]]
) -> list[Violation]:
    """All violations of *rules* over a single collection of rows."""
    violations: list[Violation] = []
    for rule in _as_cfds(rules):
        for witness in rule.violations(rows):
            if rule.is_equality:
                kind = "equality"
            elif len(witness) == 1:
                kind = "constant"
            else:
                kind = "conflict"
            violations.append(Violation(rule, kind, tuple(witness)))
    return violations


def detect(
    rules: Iterable[CFD | FD], database: DatabaseInstance | Relation
) -> list[Violation]:
    """All violations of *rules* over a database or a single relation.

    Rules are matched to relations by name; rules naming relations absent
    from the database raise ``KeyError`` (silently skipping rules hides
    configuration mistakes).
    """
    if isinstance(database, Relation):
        rows_by_relation = {database.schema.name: database.rows}
    else:
        rows_by_relation = {
            name: rel.rows for name, rel in database.relations.items()
        }
    violations: list[Violation] = []
    for rule in _as_cfds(rules):
        if rule.relation not in rows_by_relation:
            raise KeyError(
                f"rule {rule} names relation {rule.relation!r}, which the "
                "database does not contain"
            )
        violations.extend(detect_in_rows([rule], rows_by_relation[rule.relation]))
    return violations


@dataclass
class RuleSummary:
    """Aggregate statistics for one rule."""

    rule: CFD
    constant_violations: int = 0
    conflict_violations: int = 0
    equality_violations: int = 0
    dirty_tuples: int = 0

    @property
    def total(self) -> int:
        return (
            self.constant_violations
            + self.conflict_violations
            + self.equality_violations
        )


def summarize(violations: Iterable[Violation]) -> list[RuleSummary]:
    """Per-rule aggregates, sorted by total violations (descending)."""
    by_rule: dict[CFD, RuleSummary] = {}
    dirty: dict[CFD, set] = {}
    for violation in violations:
        summary = by_rule.setdefault(violation.rule, RuleSummary(violation.rule))
        if violation.kind == "constant":
            summary.constant_violations += 1
        elif violation.kind == "conflict":
            summary.conflict_violations += 1
        else:
            summary.equality_violations += 1
        bucket = dirty.setdefault(violation.rule, set())
        for tup in violation.tuples:
            bucket.add(tuple(sorted(tup.items())))
    for rule, summary in by_rule.items():
        summary.dirty_tuples = len(dirty[rule])
    return sorted(by_rule.values(), key=lambda s: -s.total)
