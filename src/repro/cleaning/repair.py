"""Greedy CFD repair: make a dirty instance satisfy its rules.

A minimal-cost repair of CFD violations is NP-hard in general, so
production cleaners use heuristics.  This module implements a simple,
deterministic, greedy attribute-modification repair in the spirit of the
cost-based heuristics of the CFD cleaning literature:

- constant violations are repaired by writing the pattern constant,
- conflict violations by copying the RHS value of the group's anchor
  tuple (the first in insertion order — a stand-in for "most reliable"),
- equality violations by copying the left attribute onto the right.

The loop iterates to a fixpoint; repairing one rule can surface
violations of another.  A round bound guards pathological rule sets
(mutually unsatisfiable rules cannot be repaired by value modification
alone — the function then raises, mirroring the consistency analysis of
Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..algebra.instance import DatabaseInstance
from ..core.cfd import CFD
from ..core.fd import FD
from ..core.values import is_const, value_matches
from .violations import _as_cfds, detect


@dataclass
class RepairEdit:
    """One cell rewrite performed by the repair."""

    relation: str
    tuple_before: Mapping[str, Any]
    attribute: str
    old_value: Any
    new_value: Any


class RepairFailed(ValueError):
    """The greedy repair did not converge (rules likely inconsistent)."""


def repair(
    rules: Iterable[CFD | FD],
    database: DatabaseInstance,
    max_rounds: int = 100,
) -> tuple[DatabaseInstance, list[RepairEdit]]:
    """A repaired copy of *database* plus the edit log.

    The input database is not modified.  The result satisfies every rule
    (verified before returning).
    """
    normalized = _as_cfds(rules)
    rows_by_relation: dict[str, list[dict[str, Any]]] = {
        name: [dict(row) for row in rel.rows]
        for name, rel in database.relations.items()
    }
    edits: list[RepairEdit] = []

    for _ in range(max_rounds):
        changed = False
        for rule in normalized:
            rows = rows_by_relation.get(rule.relation, [])
            if _repair_rule(rule, rows, edits):
                changed = True
        if not changed:
            break
    else:
        raise RepairFailed(
            "greedy repair did not converge; the rules are likely "
            "mutually unsatisfiable by value modification"
        )

    repaired = DatabaseInstance(database.schema, rows_by_relation)
    leftovers = detect(normalized, repaired)
    if leftovers:  # pragma: no cover - the fixpoint guarantees this
        raise RepairFailed(f"repair left {len(leftovers)} violations")
    return repaired, edits


def _repair_rule(
    rule: CFD, rows: list[dict[str, Any]], edits: list[RepairEdit]
) -> bool:
    changed = False

    def rewrite(row: dict[str, Any], attribute: str, value: Any) -> None:
        nonlocal changed
        edits.append(
            RepairEdit(rule.relation, dict(row), attribute, row[attribute], value)
        )
        row[attribute] = value
        changed = True

    if rule.is_equality:
        a = rule.lhs[0][0]
        b = rule.rhs[0][0]
        for row in rows:
            if row[a] != row[b]:
                rewrite(row, b, row[a])
        return changed

    rhs_attr = rule.rhs_attr
    rhs_entry = rule.rhs_entry
    anchors: dict[tuple[Any, ...], dict[str, Any]] = {}
    for row in rows:
        if not all(value_matches(row[n], e) for n, e in rule.lhs):
            continue
        if is_const(rhs_entry) and row[rhs_attr] != rhs_entry.value:
            rewrite(row, rhs_attr, rhs_entry.value)
        key = tuple(row[n] for n, _ in rule.lhs)
        anchor = anchors.get(key)
        if anchor is None:
            anchors[key] = row
        elif row[rhs_attr] != anchor[rhs_attr]:
            rewrite(row, rhs_attr, anchor[rhs_attr])
    return changed
