"""Figure 7: varying the selection condition F.

- 7(a): running time vs |F| (1..10) at |Sigma| = 2000 — mildly decreasing
  (domain constraints shrink the CFD set passed to RBR).
- 7(b): number of propagated view CFDs vs |F| — rises (more domain
  constraints become view CFDs) then falls (interaction kills more source
  CFDs than the constraints add).
"""

import pytest

from repro.propagation import prop_cfd_spc_report

from conftest import (
    F_GRID,
    PAPER_EC,
    PAPER_Y,
    SIGMA_FIXED,
    VAR_PCTS,
    record_point,
)


@pytest.mark.parametrize("var_pct", VAR_PCTS, ids=lambda v: f"var{int(v*100)}")
@pytest.mark.parametrize("num_selections", F_GRID)
def test_fig7_cover_vs_f(
    benchmark, sigma_cache, view_cache, num_selections, var_pct
):
    sigma = sigma_cache(SIGMA_FIXED, var_pct)
    view = view_cache(PAPER_Y, num_selections, PAPER_EC)
    report = benchmark.pedantic(
        prop_cfd_spc_report, args=(sigma, view), rounds=1, iterations=1
    )
    benchmark.extra_info["cover_size"] = len(report.cover)
    benchmark.extra_info["f_size"] = num_selections
    record_point(
        "Figure 7 (vary |F|)",
        num_selections,
        f"var%={int(var_pct * 100)}",
        benchmark.stats.stats.mean,
        {
            "cover": len(report.cover),
            "after_eq": report.after_eq_size,
            "view_dep_s": round(report.seconds_view_dependent, 3),
        },
    )
