"""Persistent-cache benchmark: warm restarts across real processes.

The acceptance experiment for the tiered cache (PR 2): one engine
process answers the Example 4.1 batch cold and warms the sqlite store
under ``--cache-dir``; a *second engine process* pointed at the same
directory answers the identical batch with **zero chases**, purely from
persistent-tier hits.  Both runs go through the real CLI
(``repro.cli propagate-batch``) in subprocesses, so process isolation is
genuine — nothing is shared but the cache directory.

A third leg re-runs the batch in-process with a deliberately tiny
``cache_size`` to exercise (and record) LRU eviction counts, and an
uncached leg anchors the ablation.

Series recorded per ``n`` (the Example 4.1 parameter; the batch is the
``2^n x 2`` eta-combination queries x 3 repeats):

- ``cold process``   — fresh store: chases > 0, persistent writes.
- ``warm process``   — second process: chases = 0, persistent hits.
- ``bounded (LRU)``  — in-process, ``cache_size=8``: evictions > 0.
- ``uncached``       — the ``--no-cache`` baseline.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import io as repro_io
from repro.algebra.spc import RelationAtom, SPCView
from repro.core.fd import FD
from repro.core.schema import DatabaseSchema
from repro.propagation.closure_baseline import exponential_family
from repro.propagation.engine import PropagationEngine

from conftest import record_point

SIZES = [3, 4]
REPEATS = 3

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _workload(n: int):
    """The Example 4.1 projection view plus the repeated eta batch."""
    schema, fds, projection = exponential_family(n)
    view = SPCView(
        "V",
        DatabaseSchema([schema]),
        [RelationAtom("R", {a: a for a in schema.attribute_names})],
        projection=projection,
    )
    queries = []
    for mask in range(2**n):
        lhs = tuple(
            (f"A{i + 1}" if mask & (1 << i) else f"B{i + 1}") for i in range(n)
        )
        queries.append(FD("V", lhs, ("D",)))
        queries.append(FD("V", lhs, ("A1",)))
    return schema, fds, view, queries * REPEATS


def _write_workload(n: int, workdir: Path) -> dict[str, Path]:
    schema, fds, view, queries = _workload(n)
    paths = {
        "schema": workdir / "schema.json",
        "sigma": workdir / "sigma.json",
        "view": workdir / "view.json",
        "phi": workdir / "phi.json",
    }
    repro_io.dump_json(
        repro_io.schema_to_json(DatabaseSchema([schema])), paths["schema"]
    )
    repro_io.dump_json(repro_io.dependencies_to_json(fds), paths["sigma"])
    repro_io.dump_json(repro_io.spc_view_to_json(view), paths["view"])
    repro_io.dump_json(repro_io.dependencies_to_json(queries), paths["phi"])
    return paths


def _run_cli_process(paths: dict[str, Path], cache_dir: Path) -> dict:
    """One ``propagate-batch`` engine process; returns its stats counters."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    started = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "propagate-batch",
            "--schema",
            str(paths["schema"]),
            "--sigma",
            str(paths["sigma"]),
            "--view",
            str(paths["view"]),
            "--phi",
            str(paths["phi"]),
            "--cache-dir",
            str(cache_dir),
            "--stats",
        ],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    elapsed = time.perf_counter() - started
    # Exit 1 just means "not every target propagated" — expected here
    # (the A1-concluding half of the batch is false); 2 is a real error.
    assert proc.returncode in (0, 1), proc.stderr
    stats_line = next(
        line for line in proc.stderr.splitlines() if "EngineStats(" in line
    )
    counters = {
        key: int(value)
        for key, value in re.findall(r"(\w+)=(\d+)[,)]", stats_line)
    }
    persistent = re.search(r"persistent=(\d+)h/(\d+)m/(\d+)w", stats_line)
    counters["persistent_hits"] = int(persistent.group(1))
    counters["persistent_writes"] = int(persistent.group(3))
    counters["elapsed"] = elapsed
    counters["propagated"] = sum(
        line.startswith("PROPAGATED") for line in proc.stdout.splitlines()
    )
    return counters


@pytest.mark.parametrize("n", SIZES)
def test_persistent_cache_cold_then_warm_process(tmp_path, n):
    """The headline: a second process answers the batch with 0 chases."""
    paths = _write_workload(n, tmp_path)
    cache_dir = tmp_path / "store"

    cold = _run_cli_process(paths, cache_dir)
    assert cold["persistent_writes"] > 0

    warm = _run_cli_process(paths, cache_dir)
    assert warm["chase_invocations"] == 0, "warm process must not chase"
    assert warm["closure_fast_path"] == 0, "answers come from the store"
    assert warm["persistent_hits"] > 0

    record_point(
        "Persistent cache (two processes)",
        n,
        "cold process",
        cold["elapsed"],
        {
            "chases": cold["chase_invocations"],
            "persistent_writes": cold["persistent_writes"],
        },
    )
    record_point(
        "Persistent cache (two processes)",
        n,
        "warm process",
        warm["elapsed"],
        {
            "chases": warm["chase_invocations"],
            "persistent_hits": warm["persistent_hits"],
        },
    )


@pytest.mark.parametrize("n", SIZES)
def test_bounded_tier_reports_evictions(benchmark, n):
    """A tiny LRU bound: verdicts stay correct, evictions are counted."""
    _, fds, view, queries = _workload(n)

    def run():
        engine = PropagationEngine(cache_size=8)
        return engine, engine.check_many(fds, view, queries)

    engine, verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = PropagationEngine(use_cache=False)
    assert baseline.check_many(fds, view, queries) == verdicts
    assert engine.stats.evictions > 0
    record_point(
        "Persistent cache (two processes)",
        n,
        "bounded (LRU)",
        benchmark.stats.stats.mean,
        {"evictions": engine.stats.evictions},
    )
    record_point(
        "Persistent cache (two processes)",
        n,
        "uncached",
        0.0,
        {"chases": baseline.stats.chase_invocations},
    )
