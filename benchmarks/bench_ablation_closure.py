"""Ablation A1: RBR vs the textbook closure-based method.

Section 4.1: the closure method computes ``F+`` (always exponential) and
projects; RBR avoids the closure.  On FD workloads with growing attribute
counts the gap widens — this is the paper's motivation for adopting
Gottlob's method and the reason ``PropCFD_SPC`` "behaves polynomially in
many practical cases".

Ablation A3 (same module, same workload family): the batch
``PropagationEngine`` against the uncached single-query path on a
*repeated-query* workload — every Example 4.1 candidate checked several
times, as a monitoring or integration pipeline would.  The cached engine
shares closures/chases/verdicts across the batch; the uncached engine
re-derives everything, which is exactly the overhead the engine exists
to remove.
"""

import random

import pytest

from repro import CFD, FD
from repro.algebra.spc import RelationAtom, SPCView
from repro.core.schema import DatabaseSchema
from repro.propagation.closure_baseline import (
    closure_projection_cover,
    exponential_family,
)
from repro.propagation.engine import PropagationEngine
from repro.propagation.rbr import rbr

from conftest import record_point

SIZES = [6, 9, 12]
ENGINE_SIZES = [4, 6]
REPEATS = 3


def _fd_workload(num_attrs: int, seed: int = 7):
    rng = random.Random(seed)
    attrs = [f"A{i}" for i in range(num_attrs)]
    fds = []
    for i in range(num_attrs):
        lhs = rng.sample(attrs, 2)
        rhs = rng.choice([a for a in attrs if a not in lhs])
        fds.append(FD("R", lhs, (rhs,)))
    projection = attrs[: num_attrs // 2]
    return attrs, fds, projection


@pytest.mark.parametrize("num_attrs", SIZES)
def test_ablation_closure_baseline(benchmark, num_attrs):
    attrs, fds, projection = _fd_workload(num_attrs)
    cover = benchmark.pedantic(
        closure_projection_cover,
        args=(fds, "R", attrs, projection),
        kwargs={"minimize": False},
        rounds=1,
        iterations=1,
    )
    record_point(
        "Ablation A1 (cover method)",
        num_attrs,
        "closure (textbook)",
        benchmark.stats.stats.mean,
        {"cover": len(cover)},
    )


@pytest.mark.parametrize("num_attrs", SIZES)
def test_ablation_rbr(benchmark, num_attrs):
    attrs, fds, projection = _fd_workload(num_attrs)
    dropped = [a for a in attrs if a not in projection]
    cfds = [CFD.from_fd(fd) for fd in fds]
    cover = benchmark.pedantic(
        rbr, args=(cfds, dropped), rounds=1, iterations=1
    )
    record_point(
        "Ablation A1 (cover method)",
        num_attrs,
        "RBR",
        benchmark.stats.stats.mean,
        {"cover": len(cover)},
    )


def _batch_workload(n: int, defeat_fast_path: bool = False):
    """The Example 4.1 projection view plus a repeated query batch.

    Queries are all ``2^n`` eta-combination candidates ``eta_1..eta_n ->
    D`` plus per-LHS variants concluding ``A1`` (distinct RHS, same LHS
    shape), the whole batch repeated ``REPEATS`` times (the case the
    verdict memo absorbs).

    With ``defeat_fast_path=False`` the FD-only Sigma lets the cached
    engine answer everything via memoized closures (the fast path) —
    chases=0.  ``defeat_fast_path=True`` adds a constant-pattern CFD so
    every verdict must chase, isolating what the *chased-skeleton* cache
    buys: queries sharing an LHS shape share one chase.
    """
    schema, fds, projection = exponential_family(n)
    if defeat_fast_path:
        fds = fds + [CFD("R", {"A1": "1"}, {"D": "9"})]
    view = SPCView(
        "V",
        DatabaseSchema([schema]),
        [RelationAtom("R", {a: a for a in schema.attribute_names})],
        projection=projection,
    )
    queries = []
    for mask in range(2 ** n):
        lhs = tuple(
            (f"A{i + 1}" if mask & (1 << i) else f"B{i + 1}") for i in range(n)
        )
        queries.append(FD("V", lhs, ("D",)))
        queries.append(FD("V", lhs, ("A1",)))
    return fds, view, queries * REPEATS


@pytest.mark.parametrize("n", ENGINE_SIZES)
@pytest.mark.parametrize(
    "cached,defeat_fast_path",
    [(True, False), (True, True), (False, False)],
    ids=["cached-fastpath", "cached-chase-sharing", "uncached"],
)
def test_ablation_engine_batch(benchmark, n, cached, defeat_fast_path):
    fds, view, queries = _batch_workload(n, defeat_fast_path=defeat_fast_path)

    def run():
        engine = PropagationEngine(use_cache=cached)
        return engine, engine.check_many(fds, view, queries)

    engine, verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    if cached:
        series = (
            "engine (chase sharing)" if defeat_fast_path else "engine (fast path)"
        )
    else:
        series = "uncached path"
    record_point(
        "Ablation A3 (batch engine)",
        n,
        series,
        benchmark.stats.stats.mean,
        {
            "queries": len(queries),
            "propagated": sum(verdicts),
            "chases": engine.stats.chase_invocations,
        },
    )


@pytest.mark.parametrize("n", ENGINE_SIZES)
def test_ablation_engine_env_configured(benchmark, propagation_engine, n):
    """The fixture-provided engine: ``REPRO_NO_CACHE=1`` flips this series
    to the uncached baseline without touching the benchmark code."""
    fds, view, queries = _batch_workload(n)
    verdicts = benchmark.pedantic(
        propagation_engine.check_many, args=(fds, view, queries), rounds=1, iterations=1
    )
    record_point(
        "Ablation A3 (batch engine)",
        n,
        "engine (env)" if propagation_engine.use_cache else "engine (env, no-cache)",
        benchmark.stats.stats.mean,
        {
            "queries": len(queries),
            "propagated": sum(verdicts),
            "chases": propagation_engine.stats.chase_invocations,
        },
    )
