"""Ablation A1: RBR vs the textbook closure-based method.

Section 4.1: the closure method computes ``F+`` (always exponential) and
projects; RBR avoids the closure.  On FD workloads with growing attribute
counts the gap widens — this is the paper's motivation for adopting
Gottlob's method and the reason ``PropCFD_SPC`` "behaves polynomially in
many practical cases".
"""

import random

import pytest

from repro import CFD, FD
from repro.propagation.closure_baseline import closure_projection_cover
from repro.propagation.rbr import rbr

from conftest import record_point

SIZES = [6, 9, 12]


def _fd_workload(num_attrs: int, seed: int = 7):
    rng = random.Random(seed)
    attrs = [f"A{i}" for i in range(num_attrs)]
    fds = []
    for i in range(num_attrs):
        lhs = rng.sample(attrs, 2)
        rhs = rng.choice([a for a in attrs if a not in lhs])
        fds.append(FD("R", lhs, (rhs,)))
    projection = attrs[: num_attrs // 2]
    return attrs, fds, projection


@pytest.mark.parametrize("num_attrs", SIZES)
def test_ablation_closure_baseline(benchmark, num_attrs):
    attrs, fds, projection = _fd_workload(num_attrs)
    cover = benchmark.pedantic(
        closure_projection_cover,
        args=(fds, "R", attrs, projection),
        kwargs={"minimize": False},
        rounds=1,
        iterations=1,
    )
    record_point(
        "Ablation A1 (cover method)",
        num_attrs,
        "closure (textbook)",
        benchmark.stats.stats.mean,
        {"cover": len(cover)},
    )


@pytest.mark.parametrize("num_attrs", SIZES)
def test_ablation_rbr(benchmark, num_attrs):
    attrs, fds, projection = _fd_workload(num_attrs)
    dropped = [a for a in attrs if a not in projection]
    cfds = [CFD.from_fd(fd) for fd in fds]
    cover = benchmark.pedantic(
        rbr, args=(cfds, dropped), rounds=1, iterations=1
    )
    record_point(
        "Ablation A1 (cover method)",
        num_attrs,
        "RBR",
        benchmark.stats.stats.mean,
        {"cover": len(cover)},
    )
