"""Table 2: complexity of FD-to-FD propagation.

- Infinite-domain PTIME rows: FD sources, FD targets, fragments SP, SC,
  PC, SPCU — polynomial scaling of the chase-based check.
- The general-setting coNP-complete SC cell is exercised through the
  Theorem 3.2 3SAT reduction itself: runtime against the number of
  finite-domain branching cells (the exponent of the enumeration).
"""

import pytest

from repro import FD, CFD, propagates
from repro.propagation import ThreeSat, encode, finite_branching_cells

from conftest import record_point

from bench_table1 import _chain_schema, _chain_sources, _view_for

SIZES = [4, 8, 16]


@pytest.mark.parametrize("fragment", ["SP", "SC", "PC", "SPCU"])
@pytest.mark.parametrize("n", SIZES)
def test_table2_ptime_rows(benchmark, fragment, n):
    db = _chain_schema(n)
    sigma = _chain_sources(n, "FD")
    view = _view_for(fragment, db, n)
    if fragment in ("SC", "PC"):
        phi = FD("V", ("x.A0",), (f"x.A{n-1}",))
    else:
        phi = FD("V", ("A0",), (f"A{n-1}",))
    result = benchmark.pedantic(
        propagates, args=(sigma, view, phi), rounds=1, iterations=1
    )
    assert result is True
    record_point(
        "Table 2 PTIME rows (FD -> FD)",
        n,
        fragment,
        benchmark.stats.stats.mean,
        {},
    )


#: Growing UNSAT formulas: the propagation holds, so the procedure must
#: exhaust the instantiation space — the coNP worst case.
UNSAT_FORMULAS = [
    ThreeSat(1, ((1, 1, 1), (-1, -1, -1))),
    ThreeSat(2, ((1, 2, 2), (-1, -2, -2), (1, -2, -2), (-1, 2, 2))),
]
SAT_FORMULAS = [
    ThreeSat(2, ((1, 2, 2),)),
    ThreeSat(3, ((1, 2, 3), (-1, -2, -3))),
]


@pytest.mark.parametrize("index", range(len(UNSAT_FORMULAS)))
def test_table2_conp_sc_cell_unsat(benchmark, index):
    formula = UNSAT_FORMULAS[index]
    enc = encode(formula)
    result = benchmark.pedantic(
        propagates, args=(enc.sigma, enc.view, enc.psi), rounds=1, iterations=1
    )
    assert result is True  # UNSAT <=> propagated
    record_point(
        "Table 2 coNP SC cell (3SAT reduction)",
        finite_branching_cells(enc.sigma, enc.view),
        "UNSAT (exhaustive)",
        benchmark.stats.stats.mean,
        {"clauses": len(formula.clauses)},
    )


@pytest.mark.parametrize("index", range(len(SAT_FORMULAS)))
def test_table2_conp_sc_cell_sat(benchmark, index):
    formula = SAT_FORMULAS[index]
    enc = encode(formula)
    result = benchmark.pedantic(
        propagates, args=(enc.sigma, enc.view, enc.psi), rounds=1, iterations=1
    )
    assert result is False  # SAT <=> counterexample found
    record_point(
        "Table 2 coNP SC cell (3SAT reduction)",
        finite_branching_cells(enc.sigma, enc.view),
        "SAT (early exit)",
        benchmark.stats.stats.mean,
        {"clauses": len(formula.clauses)},
    )
