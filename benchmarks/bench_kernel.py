"""Cold-chase throughput: the packed kernel against the baseline.

The bit-packed chase kernel (``src/repro/kernel/``, PR 9) answers the
*cold* half of a propagation batch — the first time a query shape meets
a branch-pair space, before any memo tier is warm.  The warm path was
already O(1) per hit; this series measures what the kernel buys on the
miss path, on the workload where the k² pair loop dominates: the
Example 4.1 exponential family as a projection view with its
``2^n`` eta-combination queries (``example_41_workload``, the same batch
the server smoke tests replay).

One *cold batch* = a fresh :class:`~repro.propagation.check.BranchPairCache`
plus one ``find_counterexample`` call per query.  Each (kernel, n) cell
reports the best of ``REPRO_KERNEL_REPEATS`` batches — cold-path work is
deterministic, so min-of-N isolates it from scheduler noise.

Two entry points, following ``bench_fuzz.py``:

- **pytest** (``PYTHONPATH=src:benchmarks python -m pytest
  benchmarks/bench_kernel.py``): one cold batch per kernel per size
  through the shared ``record_point`` series, asserting the two kernels
  return identical verdicts.
- **``--smoke``** (pytest-free, for CI): the full size sweep for both
  kernels plus a baseline-vs-kernel differential fuzz leg, writing the
  per-size speedups to ``BENCH_kernel.json``.  Exits nonzero if the
  verdicts ever diverge or the kernel fails to beat the baseline at the
  largest size.

Env knobs:

- ``REPRO_KERNEL_SIZES``   — comma-separated n values (default 3,4,5);
- ``REPRO_KERNEL_REPEATS`` — batches per cell (default 5);
- ``REPRO_FUZZ_CASES``     — cases for the differential leg (default 48).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.kernel import KERNELS
from repro.propagation.check import BranchPairCache, find_counterexample
from repro.propagation.closure_baseline import example_41_workload

from conftest import record_point

SIZES = [
    int(part)
    for part in os.environ.get("REPRO_KERNEL_SIZES", "3,4,5").split(",")
    if part.strip()
]
REPEATS = int(os.environ.get("REPRO_KERNEL_REPEATS", "5") or "5")
FUZZ_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "48") or "48")

#: Where ``--smoke`` accumulates its speedup records.
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _cold_batch(kernel: str, n: int) -> tuple[float, list[bool]]:
    """Best-of-``REPEATS`` cold-batch seconds plus the verdict vector."""
    view, sigma, queries = example_41_workload(n, defeat_fast_path=True)
    verdicts: list[bool] = []
    best = float("inf")
    for attempt in range(REPEATS):
        cache = BranchPairCache(view, enabled=True)
        started = time.perf_counter()
        answers = [
            find_counterexample(sigma, view, phi, cache=cache, kernel=kernel)
            is None
            for phi in queries
        ]
        best = min(best, time.perf_counter() - started)
        if attempt == 0:
            verdicts = answers
        else:
            assert answers == verdicts, "cold batch verdicts must be stable"
    return best, verdicts


def _warm_imports() -> None:
    """Pay one-time lazy-import costs before any timed batch."""
    for kernel in KERNELS:
        _cold_batch(kernel, 1)


def test_cold_chase_kernel_speedup():
    _warm_imports()
    n = max(s for s in SIZES if s <= 4)  # keep the pytest leg quick
    results = {}
    for kernel in KERNELS:
        seconds, verdicts = _cold_batch(kernel, n)
        results[kernel] = (seconds, verdicts)
        record_point(
            "cold-chase kernel (Example 4.1 family)",
            n,
            kernel,
            seconds,
            {"queries": 2**n},
        )
    assert results["bitset"][1] == results["baseline"][1]


# ----------------------------------------------------------------------
# --smoke: the CI sweep (no pytest machinery).
# ----------------------------------------------------------------------


def _record_bench(key: str, entry: dict) -> None:
    """Merge one record into ``BENCH_kernel.json`` (keyed per leg)."""
    doc: dict = {}
    if BENCH_FILE.exists():
        try:
            doc = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[key] = entry
    BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"bench_kernel --smoke: wrote {key} to {BENCH_FILE}")


def _smoke() -> int:
    started = time.perf_counter()
    _warm_imports()
    sweep: dict[str, dict] = {}
    failed = False
    for n in SIZES:
        cells = {}
        verdicts = {}
        for kernel in KERNELS:
            seconds, answers = _cold_batch(kernel, n)
            cells[kernel] = seconds
            verdicts[kernel] = answers
        if verdicts["bitset"] != verdicts["baseline"]:
            print(f"bench_kernel --smoke: verdicts diverge at n={n}", file=sys.stderr)
            failed = True
        speedup = cells["baseline"] / cells["bitset"] if cells["bitset"] else 0.0
        sweep[f"n={n}"] = {
            "queries": 2**n,
            "baseline_s": round(cells["baseline"], 6),
            "bitset_s": round(cells["bitset"], 6),
            "speedup": round(speedup, 2),
        }
        print(
            f"bench_kernel --smoke: n={n} baseline={cells['baseline'] * 1e3:.2f}ms "
            f"bitset={cells['bitset'] * 1e3:.2f}ms speedup={speedup:.2f}x"
        )
    largest = sweep[f"n={max(SIZES)}"]
    if largest["speedup"] < 1.0:
        print(
            f"bench_kernel --smoke: kernel slower than baseline at "
            f"n={max(SIZES)} ({largest['speedup']}x)",
            file=sys.stderr,
        )
        failed = True

    # The differential leg: the fuzz matrix restricted to baseline vs
    # the kernel-pinned service, so the artifact also records that the
    # speedup was measured on answer-identical implementations.
    from repro.fuzz import run_fuzz

    report = run_fuzz(FUZZ_CASES, 0, matrix=["baseline", "kernel"])
    if not report.ok:
        for failure in report.failures:
            print(failure.describe(), file=sys.stderr)
        failed = True

    _record_bench(
        "cold-chase",
        {
            "workload": "example_41_workload(defeat_fast_path=True)",
            "repeats": REPEATS,
            "sizes": dict(sorted(sweep.items())),
        },
    )
    _record_bench(
        "differential",
        {
            "cases": report.cases,
            "matrix": report.matrix,
            "disagreements": len(report.failures),
            "digest": report.digest,
        },
    )
    if failed:
        return 1
    print(
        f"bench_kernel --smoke OK: {largest['speedup']}x at n={max(SIZES)}, "
        f"{report.cases} differential cases agree "
        f"(total {time.perf_counter() - started:.1f}s)"
    )
    return 0


def main(argv: list[str]) -> int:
    if "--smoke" not in argv:
        print(
            "usage: python benchmarks/bench_kernel.py --smoke\n"
            "  (REPRO_KERNEL_SIZES=3,4,5, REPRO_KERNEL_REPEATS=N; the "
            "pytest entry point is `python -m pytest benchmarks/bench_kernel.py`)",
            file=sys.stderr,
        )
        return 2
    return _smoke()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
