"""Ablation A3: the Example 4.1 family, where covers are necessarily
exponential.

PropCFD_SPC cannot beat an exponential lower bound on the *output*; the
point of this series is that the cover size (and hence the runtime)
doubles per step — exactly the 2^n of Example 4.1 — while on the random
workloads of Figures 5-8 the same algorithm stays polynomial.

Two entry points, following ``bench_fuzz.py``:

- **pytest**: the ``record_point`` series above;
- **``--smoke``** (pytest-free, for CI): one cover per size, asserting
  the 2^n lower bound and writing per-size cover cardinalities and
  runtimes to ``BENCH_exponential_family.json``.  (The pytest leg
  predates the BENCH emitters and never wrote an artifact — this closes
  that gap.)
"""

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro import DatabaseSchema, SPCView, prop_cfd_spc
from repro.algebra.spc import RelationAtom
from repro.propagation.closure_baseline import exponential_family

from conftest import record_point

SIZES = [1, 2, 3] if os.environ.get("REPRO_FAST") else [1, 2, 3, 4, 5]

#: Where ``--smoke`` accumulates its records.
BENCH_FILE = (
    Path(__file__).resolve().parent.parent / "BENCH_exponential_family.json"
)


@pytest.mark.parametrize("n", SIZES)
def test_exponential_family_cover(benchmark, n):
    schema, fds, projection = exponential_family(n)
    db = DatabaseSchema([schema])
    atoms = [RelationAtom("R", {a: a for a in schema.attribute_names})]
    view = SPCView("V", db, atoms, projection=projection)
    cover = benchmark.pedantic(
        prop_cfd_spc,
        args=(fds, view),
        kwargs={"final_min_cover": False},
        rounds=1,
        iterations=1,
    )
    deriving_d = [phi for phi in cover if phi.rhs_attr == "D"]
    assert len(deriving_d) >= 2**n
    record_point(
        "Ablation A3 (Example 4.1 family)",
        n,
        "PropCFD_SPC",
        benchmark.stats.stats.mean,
        {"cover": len(cover), "2^n": 2**n},
    )


# ----------------------------------------------------------------------
# --smoke: the CI run (no pytest machinery).
# ----------------------------------------------------------------------


def _record_bench(key: str, entry: dict) -> None:
    """Merge one record into ``BENCH_exponential_family.json``."""
    doc: dict = {}
    if BENCH_FILE.exists():
        try:
            doc = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[key] = entry
    BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"bench_exponential_family --smoke: wrote {key} to {BENCH_FILE}")


def _smoke() -> int:
    started = time.perf_counter()
    sizes: dict[str, dict] = {}
    for n in SIZES:
        schema, fds, projection = exponential_family(n)
        db = DatabaseSchema([schema])
        atoms = [RelationAtom("R", {a: a for a in schema.attribute_names})]
        view = SPCView("V", db, atoms, projection=projection)
        t0 = time.perf_counter()
        cover = prop_cfd_spc(fds, view, final_min_cover=False)
        elapsed = time.perf_counter() - t0
        deriving_d = [phi for phi in cover if phi.rhs_attr == "D"]
        if len(deriving_d) < 2**n:
            print(
                f"bench_exponential_family --smoke: n={n} cover derives D "
                f"{len(deriving_d)} ways, expected >= {2 ** n}",
                file=sys.stderr,
            )
            return 1
        sizes[f"n={n}"] = {
            "cover": len(cover),
            "deriving_d": len(deriving_d),
            "2^n": 2**n,
            "elapsed_s": round(elapsed, 6),
        }
        print(
            f"bench_exponential_family --smoke: n={n} cover={len(cover)} "
            f"({elapsed * 1e3:.2f}ms)"
        )
    _record_bench("ablation-a3", {"sizes": dict(sorted(sizes.items()))})
    print(
        f"bench_exponential_family --smoke OK "
        f"(total {time.perf_counter() - started:.1f}s)"
    )
    return 0


def main(argv: list[str]) -> int:
    if "--smoke" not in argv:
        print(
            "usage: python benchmarks/bench_exponential_family.py --smoke\n"
            "  (REPRO_FAST=1 limits the sizes; the pytest entry point is "
            "`python -m pytest benchmarks/bench_exponential_family.py`)",
            file=sys.stderr,
        )
        return 2
    return _smoke()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
