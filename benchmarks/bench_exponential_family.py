"""Ablation A3: the Example 4.1 family, where covers are necessarily
exponential.

PropCFD_SPC cannot beat an exponential lower bound on the *output*; the
point of this series is that the cover size (and hence the runtime)
doubles per step — exactly the 2^n of Example 4.1 — while on the random
workloads of Figures 5-8 the same algorithm stays polynomial.
"""

import os

import pytest

from repro import DatabaseSchema, SPCView, prop_cfd_spc
from repro.algebra.spc import RelationAtom
from repro.propagation.closure_baseline import exponential_family

from conftest import record_point

SIZES = [1, 2, 3] if os.environ.get("REPRO_FAST") else [1, 2, 3, 4, 5]


@pytest.mark.parametrize("n", SIZES)
def test_exponential_family_cover(benchmark, n):
    schema, fds, projection = exponential_family(n)
    db = DatabaseSchema([schema])
    atoms = [RelationAtom("R", {a: a for a in schema.attribute_names})]
    view = SPCView("V", db, atoms, projection=projection)
    cover = benchmark.pedantic(
        prop_cfd_spc,
        args=(fds, view),
        kwargs={"final_min_cover": False},
        rounds=1,
        iterations=1,
    )
    deriving_d = [phi for phi in cover if phi.rhs_attr == "D"]
    assert len(deriving_d) >= 2**n
    record_point(
        "Ablation A3 (Example 4.1 family)",
        n,
        "PropCFD_SPC",
        benchmark.stats.stats.mean,
        {"cover": len(cover), "2^n": 2**n},
    )
