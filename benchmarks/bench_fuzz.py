"""Differential-fuzzing throughput: seeded cases through the full matrix.

The fuzz harness (``src/repro/fuzz/``, PR 7) answers every generated
case on every execution path the system has grown and insists the
answers agree byte-for-byte.  This benchmark records how fast that
matrix can chew through the seeded case stream, and which generator
corner profiles the stream actually hit — the coverage counters that
tell us the degenerate shapes (empty projections, 1-branch unions,
constant-only LHS patterns, ...) are exercised every run, not just
representable.

Two entry points, following ``bench_server.py``:

- **pytest** (``PYTHONPATH=src:benchmarks python -m pytest
  benchmarks/bench_fuzz.py``): a local-matrix run (no sockets) recorded
  through the shared ``record_point`` series, asserting zero
  disagreements and full corner coverage.
- **``--smoke``** (pytest-free, for CI): one full-matrix run — engine
  settings plus the tcp/http/orchestrator/replica endpoints — writing
  cases/s, the run digest, and the per-profile corner-hit counters to
  ``BENCH_fuzz.json``, so fuzz throughput is tracked run over run.

Env knobs:

- ``REPRO_FUZZ_CASES`` — cases per run (default 32 pytest / 64 smoke);
- ``REPRO_FUZZ_SEED``  — the stream seed (default 0).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.fuzz import PROFILES, run_fuzz

from conftest import record_point

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0") or "0")
PYTEST_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "32") or "32")
SMOKE_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "64") or "64")

#: Engine-settings-only matrix: no sockets, so the pytest leg measures
#: pure matrix arithmetic rather than loopback latency.
LOCAL_MATRIX = ["baseline", "cache", "jobs2", "shards4", "shard-recombine"]

#: Where ``--smoke`` accumulates its throughput records.
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_fuzz.json"


def test_fuzz_throughput_local_matrix():
    report = run_fuzz(PYTEST_CASES, SEED, matrix=LOCAL_MATRIX)
    assert report.ok, "\n".join(f.describe() for f in report.failures)
    assert set(report.corner_hits) == set(PROFILES), "a corner went unhit"
    record_point(
        "fuzz throughput",
        PYTEST_CASES,
        "local matrix",
        report.elapsed_s,
        {
            "cases_per_s": round(report.cases_per_s, 1),
            "digest": report.digest[:12],
            "corners": len(report.corner_hits),
        },
    )


# ----------------------------------------------------------------------
# --smoke: the CI full-matrix run (no pytest machinery).
# ----------------------------------------------------------------------


def _record_bench(key: str, entry: dict) -> None:
    """Merge one record into ``BENCH_fuzz.json`` (keyed per leg)."""
    doc: dict = {}
    if BENCH_FILE.exists():
        try:
            doc = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[key] = entry
    BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"bench_fuzz --smoke: wrote {key} to {BENCH_FILE}")


def _smoke() -> int:
    started = time.perf_counter()
    report = run_fuzz(SMOKE_CASES, SEED)  # the full default matrix
    if not report.ok:
        for failure in report.failures:
            print(failure.describe(), file=sys.stderr)
        return 1
    if set(report.corner_hits) != set(PROFILES):
        missed = sorted(set(PROFILES) - set(report.corner_hits))
        print(f"bench_fuzz --smoke: unhit corners: {missed}", file=sys.stderr)
        return 1
    _record_bench(
        f"full-matrix-s{SEED}",
        {
            "cases": report.cases,
            "seed": report.seed,
            "matrix": report.matrix,
            "digest": report.digest,
            "elapsed_s": round(report.elapsed_s, 3),
            "cases_per_s": round(report.cases_per_s, 1),
            "corner_hits": dict(sorted(report.corner_hits.items())),
        },
    )
    print(
        f"bench_fuzz --smoke OK: {report.cases} cases, 0 disagreements, "
        f"{report.cases_per_s:.1f} cases/s over {len(report.matrix)} configs "
        f"(total {time.perf_counter() - started:.1f}s)"
    )
    return 0


def main(argv: list[str]) -> int:
    if "--smoke" not in argv:
        print(
            "usage: python benchmarks/bench_fuzz.py --smoke\n"
            "  (REPRO_FUZZ_CASES=N, REPRO_FUZZ_SEED=S; the pytest entry "
            "point is `python -m pytest benchmarks/bench_fuzz.py`)",
            file=sys.stderr,
        )
        return 2
    return _smoke()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
