"""Figure 6: varying the projection list Y.

- 6(a): running time vs |Y| (5..50) at |Sigma| = 2000 — flat-ish for
  small |Y|, growing rapidly beyond |Y| ~ 30.
- 6(b): number of propagated view CFDs vs |Y| — increasing in |Y| and in
  var% (constants block transitivity in RBR).
"""

import pytest

from repro.propagation import prop_cfd_spc_report

from conftest import (
    PAPER_EC,
    PAPER_F,
    SIGMA_FIXED,
    VAR_PCTS,
    Y_GRID,
    record_point,
)


@pytest.mark.parametrize("var_pct", VAR_PCTS, ids=lambda v: f"var{int(v*100)}")
@pytest.mark.parametrize("num_projected", Y_GRID)
def test_fig6_cover_vs_y(
    benchmark, sigma_cache, view_cache, num_projected, var_pct
):
    sigma = sigma_cache(SIGMA_FIXED, var_pct)
    view = view_cache(num_projected, PAPER_F, PAPER_EC)
    report = benchmark.pedantic(
        prop_cfd_spc_report, args=(sigma, view), rounds=1, iterations=1
    )
    benchmark.extra_info["cover_size"] = len(report.cover)
    benchmark.extra_info["y_size"] = num_projected
    record_point(
        "Figure 6 (vary |Y|)",
        num_projected,
        f"var%={int(var_pct * 100)}",
        benchmark.stats.stats.mean,
        {
            "cover": len(report.cover),
            "dropped": report.dropped_attributes,
            # The |Y|-sensitive portion (EQ + RBR + final MinCover): the
            # input MinCover depends only on |Sigma| and floors the total.
            "view_dep_s": round(report.seconds_view_dependent, 3),
        },
    )
