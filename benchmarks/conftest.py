"""Shared benchmark infrastructure.

Every benchmark regenerates one figure or table of the paper's evaluation
(Section 5).  Workloads come from the Section 5 generators with fixed
seeds, so runs are reproducible.

Grid selection
--------------
The paper sweeps e.g. ``|Sigma|`` over 200..2000 in steps of 200.  A full
sweep of every figure takes tens of minutes in pure Python, so three grid
sizes are provided, chosen via environment variables:

- ``REPRO_FAST=1``  — a tiny smoke grid (seconds).
- default           — endpoints plus midpoints of every paper sweep; the
                      headline configurations (|Sigma| = 2000, |Y| = 50,
                      ...) are all included.
- ``REPRO_FULL=1``  — the paper's exact grids.

Each benchmark records the quantity the paper's companion panel reports
(cover cardinality, number of propagated CFDs) in ``extra_info``, and a
session-end hook prints per-figure series tables mirroring the paper's
plots.
"""

from __future__ import annotations

import os
import random
from collections import defaultdict

import pytest

from repro.generators import random_cfds, random_schema, random_spc_view
from repro.propagation.engine import PropagationEngine

SEED = 20080824

#: ``REPRO_NO_CACHE=1`` routes the engine-backed benchmarks (the ones
#: taking the ``propagation_engine`` fixture) through the uncached
#: baseline — the ablation escape hatch mirroring the CLI's
#: ``--no-cache`` flag.
NO_CACHE = os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")

#: Engine knobs mirroring the CLI's --cache-dir / --cache-size / --jobs:
#: point the fixture engines at a shared persistent store, bound their
#: in-memory memo tiers, or fan cache misses out across workers.
#: (``REPRO_NO_CACHE=1`` beats all three — the baseline must stay cold.)
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None
CACHE_SIZE = int(os.environ.get("REPRO_CACHE_SIZE", "0") or "0") or None
JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")
SHARDS = int(os.environ.get("REPRO_SHARDS", "1") or "1")

#: Paper defaults (Section 5): |Y| = 25, |F| = 10, |Ec| = 4, LHS in 3..9.
PAPER_Y = 25
PAPER_F = 10
PAPER_EC = 4
PAPER_SIGMA = 2000
VAR_PCTS = (0.4, 0.5)


def grid(full: list[int], default: list[int], fast: list[int]) -> list[int]:
    if os.environ.get("REPRO_FULL"):
        return full
    if os.environ.get("REPRO_FAST"):
        return fast
    return default


SIGMA_GRID = grid(
    full=list(range(200, 2001, 200)),
    default=[200, 1000, 2000],
    fast=[100, 200],
)
Y_GRID = grid(
    full=list(range(5, 51, 5)),
    default=[5, 25, 50],
    fast=[5, 10],
)
F_GRID = grid(
    full=list(range(1, 11)),
    default=[1, 5, 10],
    fast=[1, 4],
)
EC_GRID = grid(
    full=list(range(2, 12)),
    default=[2, 6, 11],
    fast=[2, 3],
)
SIGMA_FIXED = (
    100 if os.environ.get("REPRO_FAST") else PAPER_SIGMA
)


@pytest.fixture
def propagation_engine():
    """A fresh batch engine per benchmark.

    Honors ``REPRO_NO_CACHE=1`` (uncached baseline) plus the cache-tier
    knobs ``REPRO_CACHE_DIR``, ``REPRO_CACHE_SIZE``, ``REPRO_JOBS`` and
    ``REPRO_SHARDS``.
    """
    engine = PropagationEngine(
        use_cache=not NO_CACHE,
        cache_dir=CACHE_DIR,
        cache_size=CACHE_SIZE,
        jobs=JOBS,
        shards=SHARDS,
    )
    yield engine
    engine.close()


@pytest.fixture(scope="session")
def source_schema():
    """One source schema shared by every benchmark (>= 10 relations)."""
    return random_schema(random.Random(SEED), num_relations=10)


@pytest.fixture(scope="session")
def sigma_cache(source_schema):
    """Memoized source-CFD sets keyed by (size, var_pct)."""
    cache = {}

    def get(size: int, var_pct: float):
        key = (size, var_pct)
        if key not in cache:
            rng = random.Random(SEED + size + int(var_pct * 100))
            cache[key] = random_cfds(
                rng, source_schema, size, max_lhs=9, min_lhs=3, var_pct=var_pct
            )
        return cache[key]

    return get


@pytest.fixture(scope="session")
def view_cache(source_schema):
    """Memoized SPC views keyed by (|Y|, |F|, |Ec|, projection mode).

    Figures 5-7 use block projection (required to reproduce the paper's
    cover magnitudes); Figure 8 uses uniform projection (required to
    reproduce the survival collapse as |Ec| grows) — see EXPERIMENTS.md
    for why the paper's underspecified generator cannot satisfy both
    figures with a single mode.
    """
    cache = {}

    def get(
        num_projected: int,
        num_selections: int,
        num_atoms: int,
        block_projection: bool = True,
    ):
        key = (num_projected, num_selections, num_atoms, block_projection)
        if key not in cache:
            rng = random.Random(
                SEED + 7919 * num_projected + 31 * num_selections + num_atoms
            )
            cache[key] = random_spc_view(
                rng,
                source_schema,
                num_projected=num_projected,
                num_selections=num_selections,
                num_atoms=num_atoms,
                block_projection=block_projection,
            )
        return cache[key]

    return get


# ----------------------------------------------------------------------
# Figure-series reporting.
# ----------------------------------------------------------------------

_SERIES: dict[str, list[tuple]] = defaultdict(list)


def record_point(figure: str, x, series: str, runtime: float, extra: dict) -> None:
    _SERIES[figure].append((series, x, runtime, extra))


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    if not _SERIES:
        return
    tr = terminalreporter
    tr.section("paper figure series (regenerated)")
    for figure in sorted(_SERIES):
        tr.write_line("")
        tr.write_line(f"== {figure} ==")
        points = sorted(_SERIES[figure], key=lambda p: (p[0], p[1]))
        for series, x, runtime, extra in points:
            extras = "  ".join(f"{k}={v}" for k, v in extra.items())
            tr.write_line(
                f"  {series:<12} x={x:<8} runtime={runtime:8.3f}s  {extras}"
            )
