"""Extension benchmarks (Section 7 future work + cleaning application).

Not paper figures — these cover the three implemented extensions:

- ``prop_cfd_spcu``: candidate-and-verify covers for SPCU views, scaled
  in the number of union branches (the cost is branch covers plus one
  exact propagation check per candidate).
- ``prop_cfd_spc_general``: bounded case analysis over finite domains,
  scaled in the number of Boolean attributes split.
- The cleaning pipeline (detect + repair) scaled in instance size.
"""

import os
import random

import pytest

from repro import CFD, ConstantRelation, DatabaseSchema, FD, Product, RelationRef, RelationSchema, SPCUView, SPCView, Union
from repro.algebra.spc import RelationAtom
from repro.cleaning import detect, repair
from repro.core.domains import BOOL
from repro.core.schema import Attribute
from repro.generators import random_satisfying_instance, random_schema
from repro.propagation import prop_cfd_spc_general, prop_cfd_spcu

from conftest import record_point

FAST = bool(os.environ.get("REPRO_FAST"))


# ----------------------------------------------------------------------
# SPCU covers vs number of branches.
# ----------------------------------------------------------------------

BRANCH_COUNTS = [2, 3] if FAST else [2, 4, 6]


def _tagged_union(num_branches: int):
    attrs = ["AC", "city", "zip", "street"]
    schema = DatabaseSchema(
        [RelationSchema(f"R{i}", attrs) for i in range(num_branches)]
    )
    expr = None
    for i in range(num_branches):
        branch = Product(
            ConstantRelation({"CC": str(i)}), RelationRef(f"R{i}")
        )
        expr = branch if expr is None else Union(expr, branch)
    view = SPCUView.from_expr(expr, schema, name="V")
    sigma = []
    for i in range(num_branches):
        sigma.append(FD(f"R{i}", ("zip",), ("street",)))
        sigma.append(CFD(f"R{i}", {"AC": "20"}, {"city": f"city{i}"}))
    return sigma, view


@pytest.mark.parametrize("branches", BRANCH_COUNTS)
def test_spcu_cover_scaling(benchmark, branches):
    sigma, view = _tagged_union(branches)
    cover = benchmark.pedantic(
        prop_cfd_spcu, args=(sigma, view), rounds=1, iterations=1
    )
    assert cover
    record_point(
        "Extension: SPCU cover",
        branches,
        "tagged union",
        benchmark.stats.stats.mean,
        {"cover": len(cover)},
    )


# ----------------------------------------------------------------------
# General-setting covers vs number of Boolean splits.
# ----------------------------------------------------------------------

SPLIT_COUNTS = [1, 2] if FAST else [1, 2, 3]


def _bool_split_workload(num_bools: int):
    attrs = [Attribute(f"F{i}", BOOL) for i in range(num_bools)]
    attrs += [Attribute("B"), Attribute("C")]
    schema = DatabaseSchema([RelationSchema("R", attrs)])
    relation = schema.relation("R")
    atoms = [RelationAtom("R", {a: a for a in relation.attribute_names})]
    view = SPCView("V", schema, atoms)
    sigma = []
    for i in range(num_bools):
        sigma.append(CFD("R", {f"F{i}": False, "C": "c"}, {"B": "b"}))
        sigma.append(CFD("R", {f"F{i}": True, "C": "c"}, {"B": "b"}))
    return sigma, view


@pytest.mark.parametrize("num_bools", SPLIT_COUNTS)
def test_general_cover_scaling(benchmark, num_bools):
    sigma, view = _bool_split_workload(num_bools)
    cover = benchmark.pedantic(
        prop_cfd_spc_general, args=(sigma, view), rounds=1, iterations=1
    )
    target = CFD("V", {"C": "c"}, {"B": "b"})
    from repro import implies

    assert implies(cover, target)
    record_point(
        "Extension: general-setting cover",
        num_bools,
        "bool splits",
        benchmark.stats.stats.mean,
        {"cover": len(cover)},
    )


# ----------------------------------------------------------------------
# Cleaning throughput.
# ----------------------------------------------------------------------

ROW_COUNTS = [50, 100] if FAST else [100, 400, 1000]


@pytest.mark.parametrize("rows", ROW_COUNTS)
def test_cleaning_detect_and_repair(benchmark, rows):
    rng = random.Random(rows)
    schema = random_schema(rng, num_relations=2, min_attributes=4, max_attributes=4)
    relation = next(iter(schema))
    rules = [
        FD(relation.name, (relation.attribute_names[0],), (relation.attribute_names[1],)),
        CFD(
            relation.name,
            {relation.attribute_names[2]: "v1"},
            {relation.attribute_names[3]: "v2"},
        ),
    ]
    db = random_satisfying_instance(rng, schema, [], rows_per_relation=rows)

    def pipeline():
        violations = detect(rules, db)
        fixed, edits = repair(rules, db)
        return violations, edits

    violations, edits = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    record_point(
        "Extension: cleaning pipeline",
        rows,
        "detect+repair",
        benchmark.stats.stats.mean,
        {"violations": len(violations), "edits": len(edits)},
    )
