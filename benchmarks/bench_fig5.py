"""Figure 5: varying the source CFDs.

- 5(a): running time of PropCFD_SPC as |Sigma| grows from 200 to 2000,
  for var% = 40 and 50 (|Y| = 25, |F| = 10, |Ec| = 4 fixed).
- 5(b): cardinality of the minimal propagation cover for the same sweep —
  the paper's observation is that covers stay *below* |Sigma|.
"""

import pytest

from repro.propagation import prop_cfd_spc_report

from conftest import (
    PAPER_EC,
    PAPER_F,
    PAPER_Y,
    SIGMA_GRID,
    VAR_PCTS,
    record_point,
)


@pytest.mark.parametrize("var_pct", VAR_PCTS, ids=lambda v: f"var{int(v*100)}")
@pytest.mark.parametrize("size", SIGMA_GRID)
def test_fig5_cover_vs_sigma(benchmark, sigma_cache, view_cache, size, var_pct):
    sigma = sigma_cache(size, var_pct)
    view = view_cache(PAPER_Y, PAPER_F, PAPER_EC)
    report = benchmark.pedantic(
        prop_cfd_spc_report, args=(sigma, view), rounds=1, iterations=1
    )
    benchmark.extra_info["cover_size"] = len(report.cover)
    benchmark.extra_info["sigma_size"] = size
    assert len(report.cover) <= max(
        len(sigma), 2
    ), "cover exceeded the source set (Fig 5(b) shape violated)"
    record_point(
        "Figure 5 (vary |Sigma|)",
        size,
        f"var%={int(var_pct * 100)}",
        benchmark.stats.stats.mean,
        {
            "cover": len(report.cover),
            "sigma_v": report.sigma_v_size,
            "view_dep_s": round(report.seconds_view_dependent, 3),
        },
    )
