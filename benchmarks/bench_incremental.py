"""Incremental-propagation benchmark: delta invalidation + sharded chase.

The acceptance experiment for PR 4's provenance-scoped keyspace
(``docs/incremental.md``): a *multi-relation* workspace is warmed, Sigma
is then edited on **one** relation, and the queries over every other
relation must keep answering with **zero chases** — from the in-memory
tiers on a warm service (the ``delta_sigma`` leg) and from the sqlite
store across real CLI processes (the two-process leg; nothing is shared
but the cache directory).  Under the pre-PR 4 whole-Sigma keys both legs
were full cold starts.

Series recorded per ``n`` (the Example 4.1 parameter; each relation
carries its own ``2^n``-query eta batch):

- ``cold process``        — fresh store, original Sigma: chases > 0.
- ``warm after delta``    — second process, Sigma edited on R1, querying
                            the *other* relation: chases = 0, persistent
                            hits > 0.
- ``edited relation``     — third process querying the edited relation:
                            recomputes (no stale reuse).
- ``delta_sigma (svc)``   — in-process service: warm, diff, re-ask — the
                            unaffected batch answers purely from memory.
- ``sharded k^2``         — the union-view check with ``shards = 1`` vs
                            the ``REPRO_SHARDS`` (default 4) plan:
                            identical verdicts, shard tasks dispatched.

PR 10 adds the streaming-Sigma legs, recorded to ``BENCH_incremental.json``:

- ``steady-state-latency`` — per-op latency of a :class:`StreamingSession`
                             at edit rates ``ops_per_edit`` 1/2/4 (the
                             second-half mean, past warm-up).
- ``retained-warmth``      — warmth fraction per edit over a
                             ``REPRO_STREAM_EDITS`` (default 1000) edit
                             trace.
- ``seeded-vs-cold``       — the warm delta service (pair memo, branch
                             covers, cover seeds) against a fresh cold
                             service per edit on a ``k``-branch union;
                             asserts the warm path is >= 2x faster
                             (best-of-reps on both sides).

Run ``python benchmarks/bench_incremental.py --smoke`` for the CI smoke
mode: the delta, sharding and streaming assertions on a tiny grid, no
pytest required (exit 0 = pass); the streaming legs are written to
``BENCH_incremental.json``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

from repro import io as repro_io
from repro.algebra.spc import RelationAtom, SPCView
from repro.algebra.spcu import SPCUView
from repro.api import (
    CheckRequest,
    PropagationService,
    UpdateSigmaRequest,
    Workspace,
)
from repro.core.cfd import CFD
from repro.core.fd import FD
from repro.core.schema import DatabaseSchema, RelationSchema
from repro.propagation.closure_baseline import exponential_family
from repro.propagation.engine import PropagationEngine

SIZES = [3, 4]
RELATIONS = ("R1", "R2")

_SRC = str(Path(__file__).resolve().parent.parent / "src")
SHARDS = int(os.environ.get("REPRO_SHARDS", "4") or "4")
STREAM_EDITS = int(os.environ.get("REPRO_STREAM_EDITS", "1000") or "1000")

#: Where the streaming legs accumulate their records.
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"


def _record_bench(key: str, entry: dict) -> None:
    """Merge one record into ``BENCH_incremental.json`` (keyed per leg)."""
    doc: dict = {}
    if BENCH_FILE.exists():
        try:
            doc = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[key] = entry
    BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"bench_incremental: wrote {key} to {BENCH_FILE}")


def _workload(n: int):
    """Example 4.1 cloned onto each relation of a multi-relation schema.

    Returns ``(schema, sigma, views, batches)`` with one projection view
    and one ``2^n``-query eta batch per relation; Sigma carries each
    relation's FDs plus a constant CFD (so nothing trivializes into the
    closure fast path).
    """
    base, fds, projection = exponential_family(n)
    relations = [RelationSchema(rel, base.attribute_names) for rel in RELATIONS]
    schema = DatabaseSchema(relations)
    sigma: list = []
    views: dict[str, SPCView] = {}
    batches: dict[str, list[FD]] = {}
    for rel in RELATIONS:
        sigma.extend(FD(rel, fd.lhs, fd.rhs) for fd in fds)
        sigma.append(CFD(rel, {"A1": "1"}, {"D": "9"}))
        views[rel] = SPCView(
            f"V{rel}",
            schema,
            [RelationAtom(rel, {attr: attr for attr in base.attribute_names})],
            projection=projection,
        )
        batch = []
        for mask in range(2**n):
            lhs = tuple(
                (f"A{i + 1}" if mask & (1 << i) else f"B{i + 1}")
                for i in range(n)
            )
            batch.append(FD(f"V{rel}", lhs, ("D",)))
        batches[rel] = batch
    return schema, sigma, views, batches


def _edit_r1(sigma: list) -> list:
    """The delta: retire R1's constant CFD, strengthen one R1 FD."""
    edited = [
        dep
        for dep in sigma
        if not (dep.relation == "R1" and isinstance(dep, CFD))
    ]
    edited.append(CFD("R1", {"B1": "2"}, {"D": "9"}))
    return edited


def _write_files(workdir: Path, schema, sigma, view, batch) -> dict[str, Path]:
    paths = {
        "schema": workdir / "schema.json",
        "sigma": workdir / "sigma.json",
        "view": workdir / f"{view.name}.json",
        "phi": workdir / f"{view.name}-phi.json",
    }
    repro_io.dump_json(repro_io.schema_to_json(schema), paths["schema"])
    repro_io.dump_json(repro_io.dependencies_to_json(sigma), paths["sigma"])
    repro_io.dump_json(repro_io.spc_view_to_json(view), paths["view"])
    repro_io.dump_json(repro_io.dependencies_to_json(batch), paths["phi"])
    return paths


def _run_cli_process(paths: dict[str, Path], cache_dir: Path) -> dict:
    """One ``propagate-batch`` engine process; returns its stats counters."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    started = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "propagate-batch",
            "--schema",
            str(paths["schema"]),
            "--sigma",
            str(paths["sigma"]),
            "--view",
            str(paths["view"]),
            "--phi",
            str(paths["phi"]),
            "--cache-dir",
            str(cache_dir),
            "--stats",
        ],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    elapsed = time.perf_counter() - started
    assert proc.returncode in (0, 1), proc.stderr
    stats_line = next(
        line for line in proc.stderr.splitlines() if "EngineStats(" in line
    )
    counters = {
        key: int(value)
        for key, value in re.findall(r"(\w+)=(\d+)[,)]", stats_line)
    }
    persistent = re.search(r"persistent=(\d+)h/(\d+)m/(\d+)w", stats_line)
    counters["persistent_hits"] = int(persistent.group(1))
    counters["persistent_writes"] = int(persistent.group(3))
    counters["elapsed"] = elapsed
    return counters


# ----------------------------------------------------------------------
# Leg 1: two-process delta via the shared store.
# ----------------------------------------------------------------------


def _two_process_delta(tmp_path: Path, n: int, record=None) -> None:
    schema, sigma, views, batches = _workload(n)
    tmp_path.mkdir(parents=True, exist_ok=True)
    cache_dir = tmp_path / "store"

    warm_paths = {
        rel: _write_files(tmp_path, schema, sigma, views[rel], batches[rel])
        for rel in RELATIONS
    }
    cold = {rel: _run_cli_process(warm_paths[rel], cache_dir) for rel in RELATIONS}
    assert cold["R2"]["chase_invocations"] > 0
    assert cold["R2"]["persistent_writes"] > 0

    # Edit Sigma on R1; re-serialize; a fresh process asks the R2 batch.
    edited = _edit_r1(sigma)
    edited_dir = tmp_path / "edited"
    edited_dir.mkdir()
    edited_paths = {
        rel: _write_files(edited_dir, schema, edited, views[rel], batches[rel])
        for rel in RELATIONS
    }
    warm = _run_cli_process(edited_paths["R2"], cache_dir)
    assert warm["chase_invocations"] == 0, "R2 must stay warm across the delta"
    assert warm["persistent_hits"] > 0

    # The edited relation really recomputes (no stale reuse).
    recomputed = _run_cli_process(edited_paths["R1"], cache_dir)
    assert recomputed["chase_invocations"] > 0

    if record is not None:
        record(
            "Incremental delta (two processes)",
            n,
            "cold process",
            cold["R2"]["elapsed"],
            {"chases": cold["R2"]["chase_invocations"]},
        )
        record(
            "Incremental delta (two processes)",
            n,
            "warm after delta",
            warm["elapsed"],
            {"chases": 0, "persistent_hits": warm["persistent_hits"]},
        )
        record(
            "Incremental delta (two processes)",
            n,
            "edited relation",
            recomputed["elapsed"],
            {"chases": recomputed["chase_invocations"]},
        )


def test_two_process_delta_keeps_unaffected_relations_warm(tmp_path):
    from conftest import record_point

    for n in SIZES:
        _two_process_delta(tmp_path / str(n), n, record_point)


# ----------------------------------------------------------------------
# Leg 2: in-process delta_sigma through the service.
# ----------------------------------------------------------------------


def _service_delta(n: int, record=None) -> None:
    schema, sigma, views, batches = _workload(n)
    workspace = Workspace()
    workspace.add_schema("default", schema)
    workspace.add_sigma("default", sigma)
    for rel, view in views.items():
        workspace.add_view(view.name, view)
    service = PropagationService(workspace)

    cold_started = time.perf_counter()
    before = {
        rel: service.check(CheckRequest(view=views[rel].name, targets=batches[rel]))
        for rel in RELATIONS
    }
    cold_elapsed = time.perf_counter() - cold_started
    assert before["R2"].stats.chases > 0

    update = service.delta_sigma(
        UpdateSigmaRequest(
            remove=[CFD("R1", {"A1": "1"}, {"D": "9"})],
            add=[CFD("R1", {"B1": "2"}, {"D": "9"})],
        )
    )
    assert update.affected_relations == ["R1"]
    assert update.retained > 0

    warm_started = time.perf_counter()
    after = service.check(CheckRequest(view=views["R2"].name, targets=batches["R2"]))
    warm_elapsed = time.perf_counter() - warm_started
    assert after.propagated == before["R2"].propagated
    assert after.stats.chases == 0, "unaffected batch must not chase"
    assert after.stats.memo_hits == len(set(batches["R2"]))

    if record is not None:
        record(
            "Incremental delta (warm service)",
            n,
            "cold batch",
            cold_elapsed,
            {"chases": before["R2"].stats.chases},
        )
        record(
            "Incremental delta (warm service)",
            n,
            "delta_sigma (svc)",
            warm_elapsed,
            {"chases": 0, "memo_hits": after.stats.memo_hits},
        )


def test_delta_sigma_service_answers_unaffected_from_memory():
    from conftest import record_point

    for n in SIZES:
        _service_delta(n, record_point)


# ----------------------------------------------------------------------
# Leg 3: sharded k^2 chase on a union view.
# ----------------------------------------------------------------------


def _union_workload(k: int):
    attrs = ["A", "B", "C", "D"]
    schema = DatabaseSchema(
        [RelationSchema(f"S{i}", attrs) for i in range(1, k + 1)]
    )
    branches = [
        SPCView(
            "U",
            schema,
            [RelationAtom(f"S{i}", {a: a for a in attrs})],
            projection=["A", "B", "CC"],
            constants={"CC": str(i)},
        )
        for i in range(1, k + 1)
    ]
    view = SPCUView("U", branches)
    sigma: list = []
    for i in range(1, k + 1):
        sigma.append(FD(f"S{i}", ("A",), ("B",)))
        sigma.append(CFD(f"S{i}", {"A": "1"}, {"D": "9"}))
    phis = [CFD("U", {"A": "_"}, {"B": "_"})] + [
        CFD("U", {"CC": str(i), "A": "_"}, {"B": "_"}) for i in range(1, k + 1)
    ]
    return sigma, view, phis


def _sharded_union(k: int, shards: int, record=None) -> None:
    sigma, view, phis = _union_workload(k)

    flat = PropagationEngine(shards=1)
    flat_started = time.perf_counter()
    expected = flat.check_many(sigma, view, phis)
    flat_elapsed = time.perf_counter() - flat_started

    sharded = PropagationEngine(shards=shards, jobs=min(shards, 4))
    shard_started = time.perf_counter()
    got = sharded.check_many(sigma, view, phis)
    shard_elapsed = time.perf_counter() - shard_started
    assert got == expected, "verdicts must be shard-count invariant"
    assert sharded.stats.shard_tasks > 0
    sharded.close()

    if record is not None:
        record(
            "Sharded k^2 chase (union view)",
            k,
            "shards=1",
            flat_elapsed,
            {"chases": flat.stats.chase_invocations},
        )
        record(
            "Sharded k^2 chase (union view)",
            k,
            f"shards={shards}",
            shard_elapsed,
            {
                "chases": sharded.stats.chase_invocations,
                "shard_tasks": sharded.stats.shard_tasks,
            },
        )


def test_sharded_union_checks_are_invariant():
    from conftest import record_point

    for k in (4, 6):
        _sharded_union(k, SHARDS, record_point)


# ----------------------------------------------------------------------
# Leg 4: streaming sessions (steady-state latency, retained warmth).
# ----------------------------------------------------------------------


def _streaming_latency(edits: int, rates=(1, 2, 4), record=None) -> dict:
    """Per-op steady-state latency of a session at several edit rates."""
    from repro.streaming import StreamingSession, generate_trace

    entry: dict = {"edits": edits, "rates": {}}
    for rate in rates:
        trace = generate_trace(seed=17, edits=edits, ops_per_edit=rate)
        with PropagationService(use_cache=True) as service:
            report = StreamingSession(service, trace).run()
        entry["rates"][f"ops_per_edit={rate}"] = {
            "steady_state_ms": round(report.steady_state_ms, 4),
            "mean_warmth": round(report.mean_warmth, 4),
            "queries": report.queries,
        }
        if record is not None:
            record(
                "Streaming steady-state latency",
                rate,
                "per-op (warm)",
                report.steady_state_ms / 1000.0,
                {"edits": edits, "warmth": round(report.mean_warmth, 3)},
            )
    return entry


def _retained_warmth(edits: int, record=None) -> dict:
    """Warmth fraction per edit over a long generated trace."""
    from repro.streaming import StreamingSession, generate_trace

    trace = generate_trace(seed=0, edits=edits, ops_per_edit=2)
    started = time.perf_counter()
    with PropagationService(use_cache=True) as service:
        report = StreamingSession(service, trace).run()
    elapsed = time.perf_counter() - started
    warmths = [record_.warmth for record_ in report.records]
    tail = warmths[len(warmths) // 2 :]
    entry = {
        "edits": edits,
        "mean_warmth": round(report.mean_warmth, 4),
        "tail_mean_warmth": round(sum(tail) / len(tail), 4),
        "min_warmth": round(min(warmths), 4),
        "steady_state_ms": round(report.steady_state_ms, 4),
        "total_s": round(elapsed, 3),
        "pair_chases": sum(r.pair_chases for r in report.records),
        "cover_seed_hits": sum(r.cover_seed_hits for r in report.records),
        "cover_seed_misses": sum(
            r.cover_seed_misses for r in report.records
        ),
    }
    if record is not None:
        record(
            "Streaming retained warmth",
            edits,
            "session",
            elapsed,
            {
                "mean_warmth": entry["mean_warmth"],
                "seed_hits": entry["cover_seed_hits"],
            },
        )
    return entry


# ----------------------------------------------------------------------
# Leg 5: seeded delta vs cold-per-edit on a k-branch union.
# ----------------------------------------------------------------------


def _stream_union_workload(k: int):
    """A ``k``-branch union whose targets propagate (no early exits).

    Every branch tags ``CC`` with the same constant and Sigma carries an
    FD chain plus a constant CFD per relation, so the check visits all
    ``k^2`` branch pairs and the union cover is non-empty — the warm
    path exercises the pair memo, the branch-cover memo *and* the
    verify-first cover seeds on every edit.
    """
    attrs = ["A", "B", "C", "D", "E", "F"]
    rels = [f"S{i}" for i in range(1, k + 1)]
    schema = DatabaseSchema([RelationSchema(r, attrs) for r in rels])
    sigma: list = []
    for r in rels:
        sigma.extend(FD(r, (a,), (b,)) for a, b in zip(attrs, attrs[1:]))
        sigma.append(CFD(r, {"A": "1"}, {"F": "9"}))
    branches = [
        SPCView(
            "U",
            schema,
            [RelationAtom(r, {a: a for a in attrs})],
            projection=["A", "B", "C", "CC"],
            constants={"CC": "9"},
        )
        for r in rels
    ]
    view = SPCUView("U", branches)
    targets = [
        FD("U", ("A",), ("B",)),
        FD("U", ("A",), ("C",)),
        FD("U", ("B",), ("C",)),
        FD("U", ("A",), ("CC",)),
        CFD("U", {"A": "1"}, {"CC": "9"}),
    ]
    return schema, sigma, view, targets


def _stream_service(schema, sigma, view) -> PropagationService:
    workspace = Workspace()
    workspace.add_schema("default", schema)
    workspace.add_sigma("default", list(sigma))
    workspace.add_view("U", view)
    return PropagationService(workspace, use_cache=True)


def _seeded_vs_cold_once(k: int, edits: int) -> tuple[float, float]:
    """One rep: (warm seconds, cold seconds) over an edit loop.

    The warm side is a single service taking ``delta_sigma`` edits; the
    cold side builds a fresh service on the accumulated Sigma for every
    edit.  Verdicts and cover sizes are asserted identical.
    """
    from repro.api import CoverRequest

    schema, sigma, view, targets = _stream_union_workload(k)
    warm = _stream_service(schema, sigma, view)
    warm.check(CheckRequest(view="U", targets=targets))
    warm.cover(CoverRequest(view="U"))
    live = list(sigma)
    warm_s = cold_s = 0.0
    with warm:
        for e in range(edits):
            edit = CFD("S1", {"B": str(7000 + e)}, {"D": str(8000 + e)})
            live = live + [edit]
            started = time.perf_counter()
            warm.delta_sigma(UpdateSigmaRequest(add=[edit]))
            warm_check = warm.check(CheckRequest(view="U", targets=targets))
            warm_cover = warm.cover(CoverRequest(view="U"))
            warm_s += time.perf_counter() - started
            started = time.perf_counter()
            with _stream_service(schema, live, view) as cold:
                cold_check = cold.check(
                    CheckRequest(view="U", targets=targets)
                )
                cold_cover = cold.cover(CoverRequest(view="U"))
            cold_s += time.perf_counter() - started
            assert warm_check.propagated == cold_check.propagated
            assert len(warm_cover.cover) == len(cold_cover.cover)
    return warm_s, cold_s


def _seeded_vs_cold(k: int, edits: int, reps: int = 3, record=None) -> dict:
    """Best-of-reps warm vs cold-per-edit; asserts the >= 2x bar."""
    warm_best = cold_best = float("inf")
    for _ in range(reps):
        warm_s, cold_s = _seeded_vs_cold_once(k, edits)
        warm_best = min(warm_best, warm_s)
        cold_best = min(cold_best, cold_s)
    speedup = cold_best / warm_best if warm_best else 0.0
    entry = {
        "k": k,
        "edits": edits,
        "reps": reps,
        "warm_s": round(warm_best, 4),
        "cold_s": round(cold_best, 4),
        "speedup": round(speedup, 2),
    }
    assert speedup >= 2.0, (
        f"seeded delta must beat cold-per-edit 2x, got {speedup:.2f}x "
        f"(warm {warm_best:.3f}s vs cold {cold_best:.3f}s at k={k})"
    )
    if record is not None:
        record(
            "Seeded delta vs cold per edit",
            k,
            "warm (delta)",
            warm_best,
            {"edits": edits},
        )
        record(
            "Seeded delta vs cold per edit",
            k,
            "cold per edit",
            cold_best,
            {"edits": edits, "speedup": entry["speedup"]},
        )
    return entry


def test_streaming_latency_records_per_rate():
    from conftest import record_point

    _streaming_latency(edits=10, rates=(1, 2), record=record_point)


def test_retained_warmth_over_short_trace():
    from conftest import record_point

    entry = _retained_warmth(40, record=record_point)
    assert 0.0 <= entry["mean_warmth"] <= 1.0


def test_seeded_delta_beats_cold_per_edit():
    from conftest import record_point

    entry = _seeded_vs_cold(k=8, edits=4, reps=3, record=record_point)
    assert entry["speedup"] >= 2.0


# ----------------------------------------------------------------------
# --smoke: the CI entry point (no pytest machinery).
# ----------------------------------------------------------------------


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    n = 2 if smoke else SIZES[0]
    k = 3 if smoke else 4
    _service_delta(n)
    _sharded_union(k, 2 if smoke else SHARDS)
    if not smoke:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            _two_process_delta(Path(tmp), n)
    _record_bench(
        "steady-state-latency",
        _streaming_latency(edits=10 if smoke else 30),
    )
    stream_edits = min(STREAM_EDITS, 120) if smoke else STREAM_EDITS
    _record_bench("retained-warmth", _retained_warmth(stream_edits))
    seeded = _seeded_vs_cold(k=8, edits=4 if smoke else 8, reps=3)
    _record_bench("seeded-vs-cold", seeded)
    print(
        f"bench_incremental {'smoke ' if smoke else ''}OK: "
        f"delta kept unaffected relations warm (n={n}), "
        f"sharded verdicts invariant (k={k}), "
        f"streaming warm path {seeded['speedup']}x over cold per edit"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
