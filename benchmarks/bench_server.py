"""Server-mode throughput: one warm ``repro serve`` across many batches.

The acceptance experiment for server mode (PR 3): a single
``repro serve`` subprocess (stdio transport, the real CLI) answers the
Example 4.1 batch repeatedly.  The first batch is cold (chases > 0);
every subsequent batch must be answered purely from the warm engine —
**zero chases** — and the benchmark records the cold/warm latency gap
and the warm-leg request throughput.

Honors the shared env knobs (``docs/caching.md``):

- ``REPRO_JOBS``   — forwarded as ``--jobs`` (miss fan-out width);
- ``REPRO_CACHE_DIR`` — forwarded as ``--cache-dir`` (persistent tier).

Series recorded per ``n`` (the Example 4.1 parameter; one batch is the
``2^n`` eta-combination queries):

- ``cold batch``  — first request: chases > 0.
- ``warm batch``  — mean over the remaining requests: chases = 0,
  with requests/second in the extras.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import io as repro_io
from repro.propagation.closure_baseline import (
    example_41_workload,
    exponential_family_schema,
)

from conftest import record_point

SIZES = [3, 4]
WARM_BATCHES = 10

_SRC = str(Path(__file__).resolve().parent.parent / "src")
JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None


def _serve_args(n: int, workdir: Path) -> tuple[list[str], list[dict]]:
    """Write the shared Example 4.1 workload; returns (args, phi docs)."""
    view, sigma, queries = example_41_workload(n, defeat_fast_path=True)
    paths = {
        "schema": workdir / "schema.json",
        "sigma": workdir / "sigma.json",
        "view": workdir / "view.json",
    }
    repro_io.dump_json(
        repro_io.schema_to_json(exponential_family_schema(n)), paths["schema"]
    )
    repro_io.dump_json(repro_io.dependencies_to_json(sigma), paths["sigma"])
    repro_io.dump_json(repro_io.spc_view_to_json(view), paths["view"])
    args = [
        "--schema", str(paths["schema"]),
        "--sigma", str(paths["sigma"]),
        "--view", str(paths["view"]),
        "--jobs", str(JOBS),
    ]
    if CACHE_DIR:
        args += ["--cache-dir", CACHE_DIR]
    return args, repro_io.dependencies_to_json(queries)


@pytest.mark.parametrize("n", SIZES)
def test_server_throughput(n, tmp_path):
    args, phis = _serve_args(n, tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    batch = json.dumps({"op": "check", "view": "V", "phis": phis})
    try:
        timings = []
        replies = []
        for _ in range(1 + WARM_BATCHES):
            started = time.perf_counter()
            proc.stdin.write(batch + "\n")
            proc.stdin.flush()
            reply = json.loads(proc.stdout.readline())
            timings.append(time.perf_counter() - started)
            assert reply["ok"], reply
            replies.append(reply["result"])
        proc.stdin.write(json.dumps({"op": "shutdown"}) + "\n")
        proc.stdin.flush()
    finally:
        proc.stdin.close()
        assert proc.wait(timeout=60) == 0

    cold, warm = replies[0], replies[1:]
    assert cold["stats"]["chases"] > 0 or CACHE_DIR  # cold unless pre-warmed
    for result in warm:
        assert result["propagated"] == cold["propagated"]
        assert result["stats"]["chases"] == 0  # every warm leg is chase-free

    warm_mean = sum(timings[1:]) / WARM_BATCHES
    record_point(
        "server throughput",
        2**n,
        "cold batch",
        timings[0],
        {"chases": cold["stats"]["chases"], "jobs": JOBS},
    )
    record_point(
        "server throughput",
        2**n,
        "warm batch",
        warm_mean,
        {
            "chases": 0,
            "req_per_s": round(1.0 / warm_mean, 1),
            "queries_per_s": round(len(phis) / warm_mean, 1),
            "jobs": JOBS,
        },
    )
