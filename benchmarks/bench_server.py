"""Server-mode throughput: one warm ``repro serve`` across many batches.

The acceptance experiment for server mode (PR 3, extended by PR 5): a
``repro serve`` subprocess (the real CLI) answers the Example 4.1 batch
repeatedly.  The first batch is cold (chases > 0); every subsequent
batch must be answered purely from the warm engine — **zero chases** —
and the benchmark records the cold/warm latency gap and the warm-leg
request throughput.

Two entry points:

- **pytest** (the default; ``PYTHONPATH=src:benchmarks python -m pytest
  benchmarks/bench_server.py``): the PR 3 stdio experiment, recorded
  through the shared ``record_point`` series.
- **``--smoke``** (pytest-free, for CI): drives the endpoint stack of
  PR 5 — launches ``repro serve`` on a socket, talks to it through the
  typed client SDK (:func:`repro.api.connect`), and appends the
  cold/warm throughput numbers to ``BENCH_server.json`` keyed by
  transport and worker count, so the perf trajectory across transports
  is recorded run over run.

Env knobs (``docs/caching.md`` documents the shared ones):

- ``REPRO_JOBS``      — forwarded as ``--jobs`` (miss fan-out width);
- ``REPRO_CACHE_DIR`` — forwarded as ``--cache-dir`` (persistent tier);
- ``REPRO_TRANSPORT`` — ``--smoke`` only: ``ndjson`` (TCP NDJSON,
  default) or ``http`` picks the server transport under test;
- ``REPRO_WORKERS``   — ``--smoke`` only: > 1 launches that many
  ``--shard-worker`` servers and runs the 2-phase (cold/warm)
  :class:`~repro.api.ShardOrchestrator` experiment over a 3-branch
  union view instead of the single-server throughput loop, asserting
  the AND-combined verdicts match a single full engine and that the
  warm fleet answers with zero chases;
- ``REPRO_KILL_WORKER`` — ``--smoke`` with ``REPRO_WORKERS`` > 1 only:
  the fault-injection experiment — after the cold fan-out, one worker
  is hard-killed mid-run and the orchestrator must fail its shard over
  to the survivors and land the same verdict; recovery latency and the
  degraded-fleet throughput are recorded to ``BENCH_server.json``;
- ``REPRO_SHARED_STORE`` — ``--smoke`` only: the fleet-shared cache
  experiment (PR 8) — a ``repro store-serve`` blob-store server plus a
  worker answering the cold batch through ``--store-url``, then a
  *second, freshly started* worker on the same store whose very first
  batch must be chase-free (it joins a warm fleet); the cold/join
  latencies land in ``BENCH_server.json`` as ``store-shared-w2``.

Series recorded per ``n`` (the Example 4.1 parameter; one batch is the
``2^n`` eta-combination queries):

- ``cold batch``  — first request: chases > 0.
- ``warm batch``  — mean over the remaining requests: chases = 0,
  with requests/second in the extras.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import io as repro_io
from repro.propagation.closure_baseline import (
    example_41_workload,
    exponential_family_schema,
)

from conftest import record_point

SIZES = [3, 4]
WARM_BATCHES = 10

_SRC = str(Path(__file__).resolve().parent.parent / "src")
JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None
TRANSPORT = os.environ.get("REPRO_TRANSPORT", "ndjson")
WORKERS = int(os.environ.get("REPRO_WORKERS", "1") or "1")
KILL_WORKER = bool(os.environ.get("REPRO_KILL_WORKER"))
SHARED_STORE = bool(os.environ.get("REPRO_SHARED_STORE"))

#: Where ``--smoke`` accumulates its per-transport throughput records.
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_server.json"


def _serve_args(n: int, workdir: Path) -> tuple[list[str], list[dict]]:
    """Write the shared Example 4.1 workload; returns (args, phi docs)."""
    view, sigma, queries = example_41_workload(n, defeat_fast_path=True)
    paths = {
        "schema": workdir / "schema.json",
        "sigma": workdir / "sigma.json",
        "view": workdir / "view.json",
    }
    repro_io.dump_json(
        repro_io.schema_to_json(exponential_family_schema(n)), paths["schema"]
    )
    repro_io.dump_json(repro_io.dependencies_to_json(sigma), paths["sigma"])
    repro_io.dump_json(repro_io.spc_view_to_json(view), paths["view"])
    args = [
        "--schema", str(paths["schema"]),
        "--sigma", str(paths["sigma"]),
        "--view", str(paths["view"]),
        "--jobs", str(JOBS),
    ]
    if CACHE_DIR:
        args += ["--cache-dir", CACHE_DIR]
    return args, repro_io.dependencies_to_json(queries)


@pytest.mark.parametrize("n", SIZES)
def test_server_throughput(n, tmp_path):
    args, phis = _serve_args(n, tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    batch = json.dumps({"op": "check", "view": "V", "phis": phis})
    try:
        timings = []
        replies = []
        for _ in range(1 + WARM_BATCHES):
            started = time.perf_counter()
            proc.stdin.write(batch + "\n")
            proc.stdin.flush()
            reply = json.loads(proc.stdout.readline())
            timings.append(time.perf_counter() - started)
            assert reply["ok"], reply
            replies.append(reply["result"])
        proc.stdin.write(json.dumps({"op": "shutdown"}) + "\n")
        proc.stdin.flush()
    finally:
        proc.stdin.close()
        assert proc.wait(timeout=60) == 0

    cold, warm = replies[0], replies[1:]
    assert cold["stats"]["chases"] > 0 or CACHE_DIR  # cold unless pre-warmed
    for result in warm:
        assert result["propagated"] == cold["propagated"]
        assert result["stats"]["chases"] == 0  # every warm leg is chase-free

    warm_mean = sum(timings[1:]) / WARM_BATCHES
    record_point(
        "server throughput",
        2**n,
        "cold batch",
        timings[0],
        {"chases": cold["stats"]["chases"], "jobs": JOBS},
    )
    record_point(
        "server throughput",
        2**n,
        "warm batch",
        warm_mean,
        {
            "chases": 0,
            "req_per_s": round(1.0 / warm_mean, 1),
            "queries_per_s": round(len(phis) / warm_mean, 1),
            "jobs": JOBS,
        },
    )


# ----------------------------------------------------------------------
# --smoke: the CI endpoint experiment (no pytest machinery).
# ----------------------------------------------------------------------


def _launch_endpoint(args: list[str], transport: str, extra: list[str] = ()):
    """Start ``repro serve`` on an ephemeral socket; returns (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, "-m", "repro.cli", "serve", *args, "--port", "0", *extra]
    if transport == "http":
        cmd += ["--transport", "http"]
    proc = subprocess.Popen(
        cmd,
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stderr.readline()  # "listening on HOST:PORT"
    assert "listening on" in line, f"server failed to start: {line!r}"
    host_port = line.strip().removeprefix("listening on ")
    scheme = "http" if transport == "http" else "tcp"
    return proc, f"{scheme}://{host_port}"


def _record_bench(key: str, entry: dict) -> None:
    """Merge one record into ``BENCH_server.json`` (keyed per leg)."""
    doc: dict = {}
    if BENCH_FILE.exists():
        try:
            doc = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[key] = entry
    BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"bench_server --smoke: wrote {key} to {BENCH_FILE}")


def _single_server_smoke(transport: str, workdir: Path, n: int = 3) -> None:
    """Cold/warm throughput against one server over the client SDK."""
    from repro.api import connect

    args, phis = _serve_args(n, workdir)
    proc, url = _launch_endpoint(args, transport)
    batch = {"op": "check", "view": "V", "phis": phis}
    try:
        client = connect(url)
        assert client.protocol is not None
        timings = []
        replies = []
        for _ in range(1 + WARM_BATCHES):
            started = time.perf_counter()
            result = client.result(dict(batch))
            timings.append(time.perf_counter() - started)
            replies.append(result)
        cold, warm = replies[0], replies[1:]
        assert cold["stats"]["chases"] > 0 or CACHE_DIR
        for result in warm:
            assert result["propagated"] == cold["propagated"]
            assert result["stats"]["chases"] == 0, "warm leg must be chase-free"
        client.shutdown()
        client.close()
    except BaseException:
        proc.kill()  # don't mask the real failure with a wait timeout
        raise
    assert proc.wait(timeout=60) == 0
    warm_mean = sum(timings[1:]) / WARM_BATCHES
    _record_bench(
        f"{transport}-w1",
        {
            "transport": transport,
            "workers": 1,
            "n": n,
            "queries_per_batch": len(phis),
            "cold_s": round(timings[0], 4),
            "warm_mean_s": round(warm_mean, 4),
            "warm_req_per_s": round(1.0 / warm_mean, 1),
            "warm_queries_per_s": round(len(phis) / warm_mean, 1),
            "jobs": JOBS,
        },
    )
    print(
        f"bench_server --smoke OK: transport={transport} cold={timings[0]:.3f}s "
        f"warm={warm_mean:.4f}s ({1.0 / warm_mean:.0f} req/s)"
    )


def _launch_store_server():
    """Start ``repro store-serve`` on an ephemeral socket: (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "store-serve", "--port", "0"],
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stderr.readline()
    assert "listening on" in line, f"store server failed to start: {line!r}"
    return proc, f"store://{line.strip().removeprefix('listening on ')}"


def _shared_store_smoke(transport: str, workdir: Path, n: int = 3) -> None:
    """A cold worker joining a warm fleet must answer with zero chases.

    One ``repro store-serve`` blob-store server; worker A pays the cold
    batch and writes every verdict through the shared store; worker B —
    a *new process* whose engine has never seen the workload — then
    answers its very first batch purely from the store.
    """
    from repro.api import connect

    args, phis = _serve_args(n, workdir)
    store_proc, store_url = _launch_store_server()
    batch = {"op": "check", "view": "V", "phis": phis}
    store_args = [*args, "--store-url", store_url]
    try:
        proc_a, url_a = _launch_endpoint(store_args, transport)
        client_a = connect(url_a)
        started = time.perf_counter()
        cold = client_a.result(dict(batch))
        cold_s = time.perf_counter() - started
        assert cold["stats"]["chases"] > 0, "worker A must pay the cold batch"
        client_a.shutdown()
        client_a.close()
        assert proc_a.wait(timeout=60) == 0

        proc_b, url_b = _launch_endpoint(store_args, transport)
        client_b = connect(url_b)
        started = time.perf_counter()
        joined = client_b.result(dict(batch))
        join_s = time.perf_counter() - started
        join_chases = joined["stats"]["chases"]
        assert joined["propagated"] == cold["propagated"]
        assert join_chases == 0, (
            f"joining worker must answer from the fleet store, "
            f"chased {join_chases}x"
        )
        assert joined["stats"]["persistent_hits"] > 0
        client_b.shutdown()
        client_b.close()
        assert proc_b.wait(timeout=60) == 0
    except BaseException:
        store_proc.kill()
        raise
    store_proc.terminate()
    store_proc.wait(timeout=60)
    _record_bench(
        "store-shared-w2",
        {
            "transport": transport,
            "workers": 2,
            "n": n,
            "queries_per_batch": len(phis),
            "store": "store-serve",
            "cold_s": round(cold_s, 4),
            "join_warm_s": round(join_s, 4),
            "join_chases": join_chases,
            "jobs": JOBS,
        },
    )
    print(
        f"bench_server --smoke OK: shared-store fleet cold={cold_s:.3f}s, "
        f"cold-worker-joins-warm-fleet={join_s:.3f}s with {join_chases} chases"
    )


def _union_workload_docs():
    """The shared 3-branch union workload, as registerable documents."""
    from repro.propagation.closure_baseline import union_shard_workload

    schema, sigma, view, phis = union_shard_workload()
    return {
        "schema": repro_io.schema_to_json(schema),
        "sigma": repro_io.dependencies_to_json(sigma),
        "view": repro_io.view_to_json(view),
        "phis": phis,
    }


def _orchestrator_smoke(transport: str, workers: int) -> None:
    """The 2-phase fleet experiment: cold fan-out, then a warm AND."""
    from repro.api import CheckRequest, ShardOrchestrator, connect

    docs = _union_workload_docs()

    with connect("local://") as reference:
        reference.register_schema("default", docs["schema"])
        reference.register_sigma("default", docs["sigma"])
        reference.register_view("U", docs["view"])
        expected = reference.check(CheckRequest(view="U", targets=docs["phis"]))

    procs = []
    urls = []
    try:
        for _ in range(workers):
            proc, url = _launch_endpoint([], transport, extra=["--shard-worker"])
            procs.append(proc)
            urls.append(url)
        with ShardOrchestrator(urls) as orch:
            orch.register_schema("default", docs["schema"])
            orch.register_sigma("default", docs["sigma"])
            orch.register_view("U", docs["view"])
            started = time.perf_counter()
            cold = orch.check(CheckRequest(view="U", targets=docs["phis"]))
            cold_s = time.perf_counter() - started
            started = time.perf_counter()
            warm = orch.check(CheckRequest(view="U", targets=docs["phis"]))
            warm_s = time.perf_counter() - started
            assert cold.propagated == expected.propagated, "AND != single engine"
            assert warm.propagated == expected.propagated
            assert cold.stats.chases > 0
            assert warm.stats.chases == 0, "warm fleet must be chase-free"
            for worker in orch.workers:
                worker.shutdown()
    except BaseException:
        for proc in procs:
            proc.kill()  # don't mask the real failure with a wait timeout
        raise
    for proc in procs:
        assert proc.wait(timeout=60) == 0
    _record_bench(
        f"{transport}-w{workers}",
        {
            "transport": transport,
            "workers": workers,
            "queries_per_batch": len(docs["phis"]),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_req_per_s": round(1.0 / warm_s, 1),
            "cold_chases": cold.stats.chases,
            "warm_chases": 0,
        },
    )
    print(
        f"bench_server --smoke OK: {workers}-worker {transport} orchestrator "
        f"ANDs to the single-engine verdict; cold={cold_s:.3f}s warm={warm_s:.4f}s"
    )


def _failover_smoke(transport: str, workers: int) -> None:
    """The fault-injection experiment: kill 1 of N workers mid-run.

    A shard-worker fleet lands a cold AND-verdict; then the last worker
    is hard-killed (SIGKILL — no goodbye on the wire) and the batch loop
    keeps going.  The orchestrator must detect the death, re-plan the
    dead worker's shard onto the survivors, and land the *same* verdict
    as a single full engine.  Records the recovery latency (kill to the
    first correct verdict) and the degraded-fleet throughput.
    """
    from repro.api import CheckRequest, ShardOrchestrator, connect

    assert workers >= 2, "failover needs a worker to lose and one to keep"
    docs = _union_workload_docs()
    with connect("local://") as reference:
        reference.register_schema("default", docs["schema"])
        reference.register_sigma("default", docs["sigma"])
        reference.register_view("U", docs["view"])
        expected = reference.check(CheckRequest(view="U", targets=docs["phis"]))

    procs = []
    urls = []
    try:
        for _ in range(workers):
            proc, url = _launch_endpoint([], transport, extra=["--shard-worker"])
            procs.append(proc)
            urls.append(url)
        with ShardOrchestrator(urls) as orch:
            orch.register_schema("default", docs["schema"])
            orch.register_sigma("default", docs["sigma"])
            orch.register_view("U", docs["view"])
            request = CheckRequest(view="U", targets=docs["phis"])
            cold = orch.check(request)
            assert cold.propagated == expected.propagated, "AND != single engine"

            procs[-1].kill()
            procs[-1].wait(timeout=60)
            killed_at = time.perf_counter()
            recovered = orch.check(request)
            recovery_s = time.perf_counter() - killed_at
            assert recovered.propagated == expected.propagated, (
                "failover verdict != single engine"
            )
            assert orch.failovers >= 1, "the worker death went undetected"
            assert orch.live_workers() == list(range(workers - 1))

            started = time.perf_counter()
            for _ in range(WARM_BATCHES):
                warm = orch.check(request)
                assert warm.propagated == expected.propagated
            degraded_mean = (time.perf_counter() - started) / WARM_BATCHES
            assert warm.stats.chases == 0, "degraded fleet must re-warm"
            failovers = orch.failovers
            for index in orch.live_workers():
                orch.workers[index].shutdown()
    except BaseException:
        for proc in procs:
            proc.kill()  # don't mask the real failure with a wait timeout
        raise
    for proc in procs[:-1]:  # the killed one exits nonzero by design
        assert proc.wait(timeout=60) == 0
    _record_bench(
        f"{transport}-failover-w{workers}",
        {
            "transport": transport,
            "workers": workers,
            "killed": 1,
            "queries_per_batch": len(docs["phis"]),
            "cold_chases": cold.stats.chases,
            "recovery_s": round(recovery_s, 4),
            "degraded_warm_mean_s": round(degraded_mean, 4),
            "degraded_req_per_s": round(1.0 / degraded_mean, 1),
            "failovers": failovers,
        },
    )
    print(
        f"bench_server --smoke OK: killed 1/{workers} {transport} workers; "
        f"verdict still matched, recovery={recovery_s:.3f}s, degraded warm "
        f"{1.0 / degraded_mean:.0f} req/s"
    )


def main(argv: list[str]) -> int:
    if "--smoke" not in argv:
        print(
            "usage: python benchmarks/bench_server.py --smoke\n"
            "  (REPRO_TRANSPORT=ndjson|http, REPRO_WORKERS=N, "
            "REPRO_KILL_WORKER=1 for the fault-injection leg; the pytest "
            "entry point is `python -m pytest benchmarks/bench_server.py`)",
            file=sys.stderr,
        )
        return 2
    import tempfile

    if SHARED_STORE:
        with tempfile.TemporaryDirectory() as workdir:
            _shared_store_smoke(TRANSPORT, Path(workdir))
    elif WORKERS > 1 and KILL_WORKER:
        _failover_smoke(TRANSPORT, WORKERS)
    elif WORKERS > 1:
        _orchestrator_smoke(TRANSPORT, WORKERS)
    else:
        with tempfile.TemporaryDirectory() as workdir:
            _single_server_smoke(TRANSPORT, Path(workdir))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
