"""Ablation A2: the intermediate partitioned-MinCover optimization.

Section 4.3: inside procedure RBR, "Gamma := MinCover(Gamma U C)" — our
implementation (like the paper's) partitions Gamma into fixed-size blocks
and minimizes each, bounding intermediate growth without changing the
worst-case complexity.  This benchmark measures PropCFD_SPC with the
optimization on (paper default), with a different block size, and off.
"""

import os

import pytest

from repro.propagation import prop_cfd_spc_report

from conftest import PAPER_EC, PAPER_F, PAPER_Y, record_point

SIGMA_SIZE = 100 if os.environ.get("REPRO_FAST") else 1000

VARIANTS = [
    ("partition=40 (default)", 40),
    ("partition=10", 10),
    ("no intermediate mincover", None),
]


@pytest.mark.parametrize("label,partition", VARIANTS, ids=[v[0] for v in VARIANTS])
def test_ablation_intermediate_mincover(
    benchmark, sigma_cache, view_cache, label, partition
):
    sigma = sigma_cache(SIGMA_SIZE, 0.4)
    view = view_cache(PAPER_Y, PAPER_F, PAPER_EC)
    report = benchmark.pedantic(
        prop_cfd_spc_report,
        args=(sigma, view),
        kwargs={"partition_size": partition},
        rounds=1,
        iterations=1,
    )
    record_point(
        "Ablation A2 (intermediate MinCover)",
        SIGMA_SIZE,
        label,
        benchmark.stats.stats.mean,
        {"cover": len(report.cover), "after_rbr": report.after_rbr_size},
    )
