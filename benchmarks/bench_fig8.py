"""Figure 8: varying the Cartesian product Ec.

- 8(a): running time vs |Ec| (2..11) at |Sigma| = 2000 — decreasing and
  flattening for |Ec| >= 6 (with Y fixed, more relations mean more
  dropped attributes, so fewer CFDs survive into RBR).
- 8(b): number of propagated view CFDs vs |Ec| — decreasing, and largely
  insensitive to var%.
"""

import pytest

from repro.propagation import prop_cfd_spc_report

from conftest import (
    EC_GRID,
    PAPER_F,
    PAPER_Y,
    SIGMA_FIXED,
    VAR_PCTS,
    record_point,
)


@pytest.mark.parametrize("var_pct", VAR_PCTS, ids=lambda v: f"var{int(v*100)}")
@pytest.mark.parametrize("num_atoms", EC_GRID)
def test_fig8_cover_vs_ec(benchmark, sigma_cache, view_cache, num_atoms, var_pct):
    sigma = sigma_cache(SIGMA_FIXED, var_pct)
    # Uniform projection: with Y fixed and the product growing, the
    # fraction of source CFDs whose attributes survive the projection
    # collapses — the effect behind both panels of Figure 8.
    view = view_cache(PAPER_Y, PAPER_F, num_atoms, block_projection=False)
    report = benchmark.pedantic(
        prop_cfd_spc_report, args=(sigma, view), rounds=1, iterations=1
    )
    benchmark.extra_info["cover_size"] = len(report.cover)
    benchmark.extra_info["ec_size"] = num_atoms
    record_point(
        "Figure 8 (vary |Ec|)",
        num_atoms,
        f"var%={int(var_pct * 100)}",
        benchmark.stats.stats.mean,
        {
            "cover": len(report.cover),
            "sigma_v": report.sigma_v_size,
            "view_dep_s": round(report.seconds_view_dependent, 3),
        },
    )
