"""Table 1: complexity of CFD propagation, demonstrated empirically.

Table 1 is a complexity chart, not a measurement, so its reproduction has
two parts:

- **PTIME rows** (infinite-domain setting; and the PC/SP rows of the
  general setting): the decision procedure is run on scaled workloads for
  every view-language fragment — S, P, C, SP, SC, PC, SPC, SPCU — for
  both FD and CFD sources.  The recorded runtimes grow polynomially
  (the qualitative content of those cells).
- **coNP rows** (general setting): the Theorem 3.2 reduction family gives
  a worst-case series where runtime grows exponentially with the number
  of finite-domain premise cells; see also ``bench_table2.py``, which
  runs the reduction itself.  Here the S/P/C rows are exercised through
  the CFD-implication special case with finite domains.

The RA rows are undecidable — there is, provably, nothing to run; the
expression layer still *represents* RA views (``Difference``), and
``classify`` labels them, which is asserted below.
"""

import pytest

from repro import (
    CFD,
    DatabaseSchema,
    Difference,
    FD,
    RelationRef,
    RelationSchema,
    SPCUView,
    SPCView,
    classify,
    implies,
    propagates,
)
from repro.algebra.ops import AttrEq, ConstEq, Projection, Selection, Union
from repro.algebra.spc import RelationAtom
from repro.core.domains import BOOL
from repro.core.schema import Attribute

from conftest import record_point

SIZES = [4, 8, 16]


def _chain_schema(n: int) -> DatabaseSchema:
    return DatabaseSchema([RelationSchema("R", [f"A{i}" for i in range(n)])])


def _chain_sources(n: int, kind: str):
    """A dependency chain A0 -> A1 -> ... -> A_{n-1}, as FDs or CFDs."""
    if kind == "FD":
        return [FD("R", (f"A{i}",), (f"A{i+1}",)) for i in range(n - 1)]
    return [
        CFD("R", {f"A{i}": "_"}, {f"A{i+1}": "_"}) for i in range(n - 1)
    ]


def _view_for(fragment: str, db: DatabaseSchema, n: int):
    attrs = [f"A{i}" for i in range(n)]
    base = RelationRef("R")
    if fragment == "S":
        expr = Selection(base, [ConstEq("A0", "k")])
    elif fragment == "P":
        expr = Projection(base, attrs[: n - 1] + [attrs[-1]])
    elif fragment == "C":
        atoms = [RelationAtom("R", {a: a for a in attrs})]
        return SPCView("V", db, atoms, constants={"CC": "44"},
                       projection=attrs + ["CC"])
    elif fragment == "SP":
        expr = Projection(Selection(base, [ConstEq("A0", "k")]), attrs)
    elif fragment == "SC":
        atoms = [
            RelationAtom("R", {a: f"x.{a}" for a in attrs}),
            RelationAtom("R", {a: f"y.{a}" for a in attrs}),
        ]
        return SPCView(
            "V", db, atoms, [AttrEq(f"x.A{n-1}", "y.A0")]
        )
    elif fragment == "PC":
        atoms = [
            RelationAtom("R", {a: f"x.{a}" for a in attrs}),
            RelationAtom("R", {a: f"y.{a}" for a in attrs}),
        ]
        return SPCView(
            "V", db, atoms, projection=[f"x.{a}" for a in attrs]
        )
    elif fragment == "SPC":
        atoms = [
            RelationAtom("R", {a: f"x.{a}" for a in attrs}),
            RelationAtom("R", {a: f"y.{a}" for a in attrs}),
        ]
        return SPCView(
            "V",
            db,
            atoms,
            [AttrEq(f"x.A{n-1}", "y.A0")],
            [f"x.{a}" for a in attrs] + [f"y.A{n-1}"],
        )
    elif fragment == "SPCU":
        expr = Union(
            Selection(base, [ConstEq("A0", "k")]),
            Selection(base, [ConstEq("A0", "m")]),
        )
        return SPCUView.from_expr(expr, db)
    else:  # pragma: no cover - guarded by parametrize
        raise ValueError(fragment)
    return SPCView.from_expr(expr, db)


def _target(fragment: str, n: int) -> CFD:
    if fragment in ("SC", "PC", "SPC"):
        return CFD("V", {"x.A0": "_"}, {f"x.A{n-1}": "_"})
    return CFD("V", {"A0": "_"}, {f"A{n-1}": "_"})


@pytest.mark.parametrize("source_kind", ["FD", "CFD"])
@pytest.mark.parametrize(
    "fragment", ["S", "P", "C", "SP", "SC", "PC", "SPC", "SPCU"]
)
@pytest.mark.parametrize("n", SIZES)
def test_table1_ptime_rows(benchmark, fragment, source_kind, n):
    """Infinite-domain setting: every fragment's check runs and scales."""
    db = _chain_schema(n)
    sigma = _chain_sources(n, source_kind)
    view = _view_for(fragment, db, n)
    phi = _target(fragment, n)
    result = benchmark.pedantic(
        propagates, args=(sigma, view, phi), rounds=1, iterations=1
    )
    assert result is True
    record_point(
        f"Table 1 PTIME rows ({source_kind} sources)",
        n,
        fragment,
        benchmark.stats.stats.mean,
        {},
    )


@pytest.mark.parametrize("k", [1, 2, 3])
def test_table1_conp_row_via_implication(benchmark, k):
    """General setting, identity view (S/P/C rows): CFD implication with
    finite domains — runtime grows with the number of case splits."""
    attrs = [Attribute(f"B{i}", BOOL) for i in range(k)] + [Attribute("C")]
    schema = RelationSchema("R", attrs)
    sigma = []
    for i in range(k):
        sigma.append(CFD("R", {f"B{i}": False}, {"C": "c"}))
        sigma.append(CFD("R", {f"B{i}": True}, {"C": "c"}))
    phi = CFD.constant("R", "C", "c")
    result = benchmark.pedantic(
        implies, args=(sigma, phi), kwargs={"schema": schema},
        rounds=1, iterations=1,
    )
    assert result is True
    record_point(
        "Table 1 coNP row (implication, finite domains)",
        k,
        "bool-splits",
        benchmark.stats.stats.mean,
        {},
    )


def test_table1_ra_row_is_represented_not_decided():
    db = _chain_schema(3)
    expr = Difference(RelationRef("R"), RelationRef("R"))
    assert classify(expr) == "RA"
